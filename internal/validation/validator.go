package validation

import (
	"repro/internal/privacy"
)

// Decision is the outcome of an SLAed validation (Fig. 2): ACCEPT pushes
// the model to serving, REJECT abandons it, RETRY asks privacy-adaptive
// training for more data or budget.
type Decision int

const (
	// Retry means the test could not decide; train with more resources.
	Retry Decision = iota
	// Accept means the model meets its quality target with high
	// probability.
	Accept
	// Reject means no model in the class can meet the target.
	Reject
)

// String returns the decision name.
func (d Decision) String() string {
	switch d {
	case Accept:
		return "ACCEPT"
	case Reject:
		return "REJECT"
	default:
		return "RETRY"
	}
}

// Mode selects the validation discipline. The four modes are exactly the
// four columns of Table 2, which ablate Sage's two ingredients
// (statistical rigor, DP correction):
type Mode int

const (
	// ModeNoSLA is vanilla TFX validation: compare the (noisy) point
	// estimate against the target with no statistical confidence.
	ModeNoSLA Mode = iota
	// ModeNPSLA is a statistically rigorous but non-private test — the
	// best achievable with confidence but no privacy ("NP SLA").
	ModeNPSLA
	// ModeUncorrectedDP adds DP noise to the test statistics but does
	// not correct the confidence bounds for it ("UC DP SLA").
	ModeUncorrectedDP
	// ModeSage is the full Sage SLAed validator: DP noise plus
	// worst-case noise-impact correction (Listing 2).
	ModeSage
)

// String returns the mode name as used in the paper's tables.
func (m Mode) String() string {
	switch m {
	case ModeNoSLA:
		return "No SLA"
	case ModeNPSLA:
		return "NP SLA"
	case ModeUncorrectedDP:
		return "UC DP SLA"
	default:
		return "Sage SLA"
	}
}

// isDP reports whether the mode adds DP noise to test statistics.
func (m Mode) isDP() bool { return m == ModeNoSLA || m == ModeUncorrectedDP || m == ModeSage }

// corrects reports whether the mode corrects bounds for DP noise impact.
func (m Mode) corrects() bool { return m == ModeSage }

// Config is shared by all SLAed validators.
type Config struct {
	// Mode selects the validation discipline (default ModeSage).
	Mode Mode
	// Eta is the total failure probability of the test (1−confidence;
	// the paper splits it η/2 per ACCEPT/REJECT test and η/3 per DP
	// estimate inside a test).
	Eta float64
	// Epsilon is the (ε, 0)-DP budget the validation may spend.
	Epsilon float64
}

// Cost returns the privacy cost of running one validation: ε for the DP
// modes, zero for the non-private mode.
func (c Config) Cost() privacy.Budget {
	if c.Mode.isDP() {
		return privacy.Budget{Epsilon: c.Epsilon}
	}
	return privacy.Zero
}

// validate panics on out-of-range parameters.
func (c Config) validate() {
	if c.Eta <= 0 || c.Eta >= 1 {
		panic("validation: Eta must be in (0,1)")
	}
	if c.Mode.isDP() && c.Epsilon <= 0 {
		panic("validation: DP validation requires Epsilon > 0")
	}
}
