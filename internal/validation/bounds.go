// Package validation implements Sage's SLAed validators (§3.3, Listing 2,
// Appendix B): statistically rigorous ACCEPT/REJECT/RETRY tests for loss
// metrics, accuracy, and absolute errors of sum-based statistics, with
// corrections for the worst-case impact of the DP noise the tests
// themselves add.
package validation

import (
	"math"
)

// BernsteinUpperBound returns a (1−η)-confidence upper bound on the
// expected loss given an empirical mean loss over n samples, for a loss
// bounded in [0, B] (Listing 2, lines 23-25; Shalev-Shwartz & Ben-David
// Appendix B):
//
//	loss + sqrt(2·B·loss·ln(1/η)/n) + 4·B·ln(1/η)/n
func BernsteinUpperBound(loss, n, eta, b float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	if loss < 0 {
		loss = 0
	}
	logTerm := math.Log(1 / eta)
	return loss + math.Sqrt(2*b*loss*logTerm/n) + 4*b*logTerm/n
}

// EmpiricalBernsteinUpperBound returns a (1−η)-confidence upper bound
// using the sample variance (Maurer & Pontil 2009), tighter than
// Bernstein when the variance is small:
//
//	mean + sqrt(2·var·ln(2/η)/n) + 7·B·ln(2/η)/(3(n−1))
func EmpiricalBernsteinUpperBound(mean, variance, n, eta, b float64) float64 {
	if n <= 1 {
		return math.Inf(1)
	}
	if variance < 0 {
		variance = 0
	}
	logTerm := math.Log(2 / eta)
	return mean + math.Sqrt(2*variance*logTerm/n) + 7*b*logTerm/(3*(n-1))
}

// HoeffdingDeviation returns t such that the empirical mean of n samples
// of a [0, B]-bounded variable deviates from its expectation by more than
// t with probability at most η (one-sided): t = B·sqrt(ln(1/η)/(2n)).
func HoeffdingDeviation(n, eta, b float64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return b * math.Sqrt(math.Log(1/eta)/(2*n))
}

// lnBeta returns ln B(a, b).
func lnBeta(a, b float64) float64 {
	la, _ := math.Lgamma(a)
	lb, _ := math.Lgamma(b)
	lab, _ := math.Lgamma(a + b)
	return la + lb - lab
}

// betacf evaluates the continued fraction for the regularized incomplete
// beta function (Numerical Recipes §6.4).
func betacf(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		fpmin   = 1e-300
	)
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < fpmin {
		d = fpmin
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = 1 + aa/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b),
// the CDF of the Beta(a, b) distribution at x.
func RegIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	ln := a*math.Log(x) + b*math.Log(1-x) - lnBeta(a, b)
	front := math.Exp(ln)
	if x < (a+1)/(a+b+2) {
		return front * betacf(a, b, x) / a
	}
	return 1 - front*betacf(b, a, 1-x)/b
}

// BetaInvCDF returns the p-quantile of the Beta(a, b) distribution via
// bisection on RegIncBeta.
func BetaInvCDF(p, a, b float64) float64 {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 1
	}
	lo, hi := 0.0, 1.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if RegIncBeta(a, b, mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// BinomialUpper returns the Clopper–Pearson upper confidence bound on the
// success probability p of a binomial with k observed successes out of n
// draws, at confidence 1−η: the paper's Bin(k, n, η) for the accuracy
// validator (Appendix B.2).
func BinomialUpper(k, n, eta float64) float64 {
	if n <= 0 {
		return 1
	}
	if k < 0 {
		k = 0
	}
	if k >= n {
		return 1
	}
	return BetaInvCDF(1-eta, k+1, n-k)
}

// BinomialLower returns the Clopper–Pearson lower confidence bound on p,
// the paper's Bin(k, n, η).
func BinomialLower(k, n, eta float64) float64 {
	if n <= 0 {
		return 0
	}
	if k <= 0 {
		return 0
	}
	if k > n {
		k = n
	}
	return BetaInvCDF(eta, k, n-k+1)
}
