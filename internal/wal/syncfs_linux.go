//go:build linux && (amd64 || arm64)

package wal

import (
	"os"
	"syscall"
)

const syncfsSupported = true

// syncfs flushes the whole filesystem containing f and waits for
// completion (Linux syncfs(2) blocks until the data is written and,
// since 5.8, reports writeback errors). The syscall package predates
// syncfs, so the number is defined per-arch alongside this file.
func syncfs(f *os.File) error {
	_, _, errno := syscall.Syscall(sysSYNCFS, f.Fd(), 0, 0)
	if errno != 0 {
		return errno
	}
	return nil
}
