// Package wal implements the write-ahead log under Sage's durable
// platform core. Every stateful layer of the platform — the privacy
// ledger (core.AccessControl) and the model & feature store
// (store.Store) — journals its mutations here *before* acknowledging
// them, so a crash at any instant loses at most work that was never
// acknowledged, never privacy spend that was. Recovery is replay: open
// the log, apply the surviving records in order, and the process is
// exactly where the last acknowledged operation left it.
//
// # Format
//
// The log is a single file of length-prefixed, checksummed records:
//
//	uint32 big-endian payload length
//	byte   record type (opaque to this package)
//	uint32 big-endian CRC-32C (Castagnoli) over type byte + payload
//	payload
//
// # Crash consistency
//
// Appends write the whole frame with one write(2) call and (unless
// Options.NoSync) fdatasync before returning, so an acknowledged append
// is on disk. A crash mid-append leaves a torn tail: a partial header,
// a partial payload, or a frame whose checksum does not match. Open
// detects all three, truncates the file back to the last intact record
// boundary, and reports the dropped bytes in Stats — replay never sees
// a half-written record, and the log is immediately appendable again.
// Corruption is treated as tail damage: the first bad frame ends
// recovery, and everything after it is discarded. That is the right
// semantics for a journal whose only writer appends (the only expected
// damage is at the end), and it is what makes the ledger's
// crash-consistency argument go through: the surviving records are
// always a *prefix* of the acknowledged-or-in-flight operations.
//
// A write or sync failure poisons the log: the failed frame may be
// partially on disk, so any record appended after it could land beyond
// a torn frame and become unreachable to recovery even though its own
// write succeeded — an acknowledged-but-unrecoverable record, exactly
// the inversion journal-before-ack forbids. Every subsequent Append on
// a poisoned log therefore fails fast with the original error; the
// only way back is to reopen, which truncates the torn tail.
//
// # Group commit
//
// With Options.GroupCommit, appends are split into a staging step and a
// durability wait (AppendAsync returning a Commit ticket; Append is the
// two chained). Concurrent appenders enqueue frames into the current
// batch; whoever reaches the commit lock first writes the whole batch
// with one write(2) and pays a single fdatasync for every frame in it,
// and the other appenders' Commit.Wait calls unblock when their frame
// is durable. Batches commit strictly in staging order (the commit
// lock covers seal→write→sync), so the on-disk record order equals
// staging order and the torn-tail prefix argument above is unchanged.
// Journal-before-ack is preserved exactly: Wait returns nil only after
// the frame's batch is written and synced. Under contention the sync
// cost amortizes across the batch (~146µs per fdatasync on the bench
// hardware vs ~0.8µs per unsynced append, see BENCH_wal.json /
// BENCH_ledger.json); an uncontended append degenerates to a batch of
// one and pays what it always paid.
//
// # Compaction
//
// An append-only journal grows forever; Compact rewrites it as a
// snapshot. The caller provides the records that reconstruct current
// state (for the ledger, one snapshot record per shard segment; for the
// store, one record per bundle); Compact writes them to a temporary
// file in the same directory, syncs it, and atomically renames it over
// the log. A crash at any point leaves either the old log or the new
// one, never a mix — rename(2) on the same filesystem is atomic.
// Compact requires the same single-writer discipline as Append: the
// caller must ensure no concurrent appends race the rewrite, or they
// would be lost with it.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
	"repro/internal/trace"
)

// headerSize is the fixed frame prefix: length (4) + type (1) + crc (4).
const headerSize = 9

// MaxRecordBytes bounds one record's payload (64 MiB — comfortably
// above the largest bundle the replica tier accepts). A scanned length
// beyond it is treated as corruption, so a damaged length field cannot
// make recovery attempt a multi-gigabyte allocation.
const MaxRecordBytes = 64 << 20

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one journaled entry: a type byte the client dispatches on
// and an opaque payload.
type Record struct {
	Type    byte
	Payload []byte
}

// Options configures a log.
type Options struct {
	// NoSync disables the per-append fdatasync. Throughput rises by
	// orders of magnitude, durability drops to "whatever the OS flushed
	// before the crash" — recovery still sees a valid prefix (the torn-
	// tail scan handles partially-flushed frames), it may just be an
	// older one. Tests and benchmarks use it; a production daemon must
	// not.
	NoSync bool
	// GroupCommit batches concurrent appends into one write+fdatasync
	// (see the package docs). Durability and ordering semantics are
	// identical to the plain path; only the sync cost per append under
	// contention changes.
	GroupCommit bool
	// SyncGroup, when non-nil, replaces the per-file fdatasync with a
	// filesystem-wide group sync shared by several logs (the sharded
	// ledger's segments). Concurrent commits on different files then
	// amortize one flush instead of serializing one journal commit
	// each. Ignored when NoSync is set. See NewSyncGroup.
	SyncGroup *SyncGroup
	// Metrics, when non-nil, registers per-log instrumentation in the
	// registry (append/sync latency, commit batch depth, a poisoned
	// flag, size and record gauges), every series labeled
	// log=<basename>. An uninstrumented log pays one nil check per
	// append.
	Metrics *metrics.Registry
	// Logf, when non-nil, receives one-line structured state-transition
	// logs — currently the log-poisoning event.
	Logf func(format string, args ...any)
	// Tracer, when non-nil, records every committed batch as a span
	// tree: a wal.commit root carrying the log name and frame count,
	// with wal.append (the write) and wal.flush (the sync) as children.
	// Nil leaves the append path untraced.
	Tracer *trace.Tracer
}

// Stats reports what Open found.
type Stats struct {
	// Records is the number of intact records recovered.
	Records int
	// TornBytes counts bytes dropped from the tail: a partial frame
	// from a crash mid-append, or a frame whose checksum failed.
	TornBytes int64
	// Truncated is true when a torn or corrupt tail was cut off.
	Truncated bool
}

// Log is an append-only write-ahead log. Append and Compact are
// mutually excluded by an internal lock, but the single-writer
// discipline documented on Compact still applies: compaction snapshots
// state that appends mutate, so the two must be externally ordered.
type Log struct {
	mu     sync.Mutex // file state: f, size, count, stats, failed
	path   string
	f      *os.File
	size   int64
	count  int
	noSync bool
	stats  Stats
	// failed poisons the log after a write/sync error (see the package
	// docs): the torn frame makes every later append unreachable to
	// recovery, so acknowledging one would break journal-before-ack.
	failed error
	// ins is the optional per-log instrumentation (nil when the log was
	// opened without Options.Metrics); logf is the optional structured
	// transition logger.
	ins  *instruments
	logf func(format string, args ...any)
	// tracer records commit cohort spans (nil ⇒ untraced); base is the
	// precomputed file basename stamped on those spans.
	tracer *trace.Tracer
	base   string

	// Group-commit state. commitMu serializes seal→write→sync so
	// batches hit the file in staging order; batchMu guards only the
	// staging batch.
	gc       bool
	group    *SyncGroup // nil ⇒ per-file fsync
	commitMu sync.Mutex
	batchMu  sync.Mutex
	batch    *commitBatch
	// lastBatch is the most recently created batch (guarded by batchMu),
	// used to chain a new batch to an in-flight predecessor.
	lastBatch *commitBatch
	// Cumulative group-commit telemetry (guarded by mu): how many
	// batches were committed and how many frames they carried. The
	// ratio is the effective fsync amortization factor.
	commitBatches int64
	commitFrames  int64
}

// GroupCommitStats reports how many batches have been committed and how
// many frames they carried in total. frames/batches is the average
// batch depth — the factor by which group commit amortized fsyncs.
func (l *Log) GroupCommitStats() (batches, frames int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.commitBatches, l.commitFrames
}

// instruments is the optional per-log metric set. The handles are
// resolved once at Open so the append path does no lookups.
type instruments struct {
	appendSec   *metrics.Histogram
	syncSec     *metrics.Histogram
	batchFrames *metrics.Histogram
	poisoned    *metrics.Gauge
}

// commitBatch accumulates staged frames awaiting one shared commit.
type commitBatch struct {
	buf  []byte
	n    int
	err  error
	done chan struct{}
	// prev is the predecessor batch if it was still in flight when this
	// batch was created (guarded by batchMu; cleared once this batch
	// commits so old batches can be collected). Waiters block on
	// prev.done — a channel, observable while parked — rather than on
	// commitMu, where a parked waiter whose batch already committed
	// would still wake up, barge in, and chop the next batch into
	// one-frame commits. The predecessor's fsync is exactly the window
	// in which this batch fills up.
	prev *commitBatch
	// driver elects exactly one waiter to seal and commit this batch.
	// The losers park on done — a channel close wakes them all at once,
	// so after a commit the whole cohort stages its next frames into
	// one batch instead of dribbling out of a mutex queue one by one.
	driver atomic.Bool
}

// Open opens (creating if absent) the log at path, scans it, truncates
// any torn or corrupt tail, and returns the surviving records in append
// order. The returned log is positioned for appending.
func Open(path string, opts Options) (*Log, []Record, error) {
	// A leftover compaction temp file means a crash hit between writing
	// the replacement and renaming it; the rename never happened, so the
	// original log is authoritative and the temp is garbage.
	_ = os.Remove(compactPath(path))

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: read %s: %w", path, err)
	}
	records, offsets := scan(raw)
	good := offsets[len(offsets)-1]
	l := &Log{
		path:   path,
		f:      f,
		size:   good,
		count:  len(records),
		noSync: opts.NoSync,
		gc:     opts.GroupCommit,
		group:  opts.SyncGroup,
		stats: Stats{
			Records:   len(records),
			TornBytes: int64(len(raw)) - good,
			Truncated: good < int64(len(raw)),
		},
	}
	if l.stats.Truncated {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: sync %s: %w", path, err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: seek %s: %w", path, err)
	}
	l.logf = opts.Logf
	l.tracer = opts.Tracer
	l.base = filepath.Base(path)
	if opts.Metrics != nil {
		base := filepath.Base(path)
		lbl := metrics.Label{Name: "log", Value: base}
		l.ins = &instruments{
			appendSec: opts.Metrics.Histogram("sage_wal_append_seconds",
				"Latency of one durable append (write plus sync).", metrics.LatencyBuckets(), lbl),
			syncSec: opts.Metrics.Histogram("sage_wal_sync_seconds",
				"Latency of the sync step alone (fdatasync, or the shared syncfs cohort ride).", metrics.LatencyBuckets(), lbl),
			batchFrames: opts.Metrics.Histogram("sage_wal_commit_batch_frames",
				"Frames carried by one committed batch (the fsync amortization factor).", metrics.SizeBuckets(), lbl),
			poisoned: opts.Metrics.Gauge("sage_wal_poisoned",
				"1 after a write/sync failure poisoned the log, else 0.", lbl),
		}
		opts.Metrics.GaugeFunc("sage_wal_size_bytes",
			"Current byte length of the log file.",
			func() float64 { return float64(l.Size()) }, lbl)
		opts.Metrics.GaugeFunc("sage_wal_records",
			"Records in the log (recovered plus appended).",
			func() float64 { return float64(l.Records()) }, lbl)
	}
	return l, records, nil
}

// scan walks raw and returns the intact records plus every record
// *boundary*: offsets[0] = 0 and offsets[k] is the offset just past
// record k-1, so offsets[len(records)] is where the valid prefix ends.
// Scanning stops at the first torn or corrupt frame; everything after
// it is tail damage by the package's crash model.
func scan(raw []byte) ([]Record, []int64) {
	var records []Record
	offsets := []int64{0}
	off := int64(0)
	for {
		rest := raw[off:]
		if len(rest) < headerSize {
			return records, offsets
		}
		n := int64(binary.BigEndian.Uint32(rest))
		if n > MaxRecordBytes || int64(len(rest)) < headerSize+n {
			return records, offsets
		}
		typ := rest[4]
		sum := binary.BigEndian.Uint32(rest[5:9])
		payload := rest[headerSize : headerSize+n]
		crc := crc32.Update(crc32.Checksum([]byte{typ}, castagnoli), castagnoli, payload)
		if crc != sum {
			return records, offsets
		}
		records = append(records, Record{Type: typ, Payload: append([]byte(nil), payload...)})
		off += headerSize + n
		offsets = append(offsets, off)
	}
}

// RecordOffsets scans the log file at path and returns the byte offset
// of every intact record boundary (see scan): truncating the file at
// offsets[k] yields exactly the first k records. Fault-injection tests
// and recovery tooling use it to cut logs at precise points.
func RecordOffsets(path string) ([]int64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	_, offsets := scan(raw)
	return offsets, nil
}

// RecordInfo describes one frame found by Inspect.
type RecordInfo struct {
	// Offset is the frame's byte offset in the file.
	Offset int64
	// Length is the payload length from the frame header.
	Length int64
	// Type is the record type byte.
	Type byte
	// CRCOK reports whether the frame's checksum verified. At most the
	// last reported frame can be false (scanning stops there).
	CRCOK bool
}

// InspectReport is Inspect's per-file summary: the intact record
// prefix, the first damaged frame if its header was readable, and how
// many tail bytes recovery would drop.
type InspectReport struct {
	Records []RecordInfo
	// GoodBytes is where the intact prefix ends — the offset recovery
	// truncates to.
	GoodBytes int64
	// TotalBytes is the file's size.
	TotalBytes int64
}

// Torn reports whether the file carries tail damage (recovery would
// truncate TotalBytes-GoodBytes bytes).
func (r InspectReport) Torn() bool { return r.GoodBytes < r.TotalBytes }

// Inspect scans the log file at path without opening it for writing and
// reports every frame: the intact prefix, plus — when the damaged tail
// begins with a parseable header — the offending frame with CRCOK
// false. Debugging tooling (`sagectl wal`) uses it to show exactly
// where a torn tail starts and what recovery will keep.
func Inspect(path string) (InspectReport, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return InspectReport{}, err
	}
	rep := InspectReport{TotalBytes: int64(len(raw))}
	off := int64(0)
	for {
		rest := raw[off:]
		if len(rest) < headerSize {
			rep.GoodBytes = off
			return rep, nil
		}
		n := int64(binary.BigEndian.Uint32(rest))
		if n > MaxRecordBytes || int64(len(rest)) < headerSize+n {
			rep.GoodBytes = off
			return rep, nil
		}
		typ := rest[4]
		sum := binary.BigEndian.Uint32(rest[5:9])
		payload := rest[headerSize : headerSize+n]
		crc := crc32.Update(crc32.Checksum([]byte{typ}, castagnoli), castagnoli, payload)
		info := RecordInfo{Offset: off, Length: n, Type: typ, CRCOK: crc == sum}
		rep.Records = append(rep.Records, info)
		if !info.CRCOK {
			rep.GoodBytes = off
			return rep, nil
		}
		off += headerSize + n
	}
}

// Stats returns what Open found (recovered record count, torn bytes).
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Size returns the log's current byte length.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Records returns the number of records in the log (recovered plus
// appended since open, minus those rewritten away by Compact).
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Append journals one record: frame it, write it, and (unless NoSync)
// sync before returning. When Append returns nil the record will
// survive any subsequent crash; on error the caller must not
// acknowledge the operation it was journaling. With GroupCommit the
// frame may share its write and fdatasync with concurrently appended
// records; semantics are unchanged.
func (l *Log) Append(typ byte, payload []byte) error {
	c, err := l.AppendAsync(typ, payload)
	if err != nil {
		return err
	}
	return c.Wait()
}

// Commit is the durability ticket AppendAsync returns: Wait blocks
// until the staged record's batch is written and synced (or failed).
type Commit struct {
	l *Log
	b *commitBatch
}

// Wait blocks until the staged record is durable and returns the
// commit's outcome. nil means the record will survive any subsequent
// crash; non-nil means it may not, and the operation it journals must
// not be acknowledged. Wait is safe to call from any goroutine and
// more than once.
func (c Commit) Wait() error {
	if c.b == nil {
		return nil // resolved at append time (non-group-commit path)
	}
	select {
	case <-c.b.done:
		return c.b.err
	default:
	}
	// First let our predecessor batch finish: while its fsync runs, our
	// batch keeps filling with frames from other appenders. Blocking
	// here on a channel (not on commitMu) is what lets those appenders
	// stage instead of queueing.
	c.l.batchMu.Lock()
	prev := c.b.prev
	c.l.batchMu.Unlock()
	if prev != nil {
		<-prev.done
	}
	// Exactly one waiter drives the commit; everyone else parks on the
	// done channel. commitOwn seals and commits our batch unless a
	// concurrent flush (Sync/Compact/Close) already did.
	if c.b.driver.CompareAndSwap(false, true) {
		c.l.commitOwn(c.b)
	}
	<-c.b.done
	return c.b.err
}

// AppendAsync stages one record and returns a ticket that resolves when
// it is durable. Without GroupCommit the record is written (and synced)
// before AppendAsync returns and the ticket is already resolved. A
// non-nil error means nothing was staged. Callers must call Wait on
// every ticket they obtain — an unwaited ticket's batch commits when
// the next append or Sync/Compact/Close arrives, but its outcome is
// then unobserved.
//
// Staging order is on-disk order: a record staged after another —
// under whatever external lock orders the two mutations — can never
// survive a crash that loses the earlier one.
func (l *Log) AppendAsync(typ byte, payload []byte) (Commit, error) {
	if int64(len(payload)) > MaxRecordBytes {
		return Commit{}, fmt.Errorf("wal: record of %d bytes exceeds limit %d", len(payload), int64(MaxRecordBytes))
	}
	if !l.gc {
		frame := appendFrame(make([]byte, 0, headerSize+len(payload)), typ, payload)
		l.mu.Lock()
		err := l.writeLocked(frame, 1)
		l.mu.Unlock()
		return Commit{}, err
	}
	l.batchMu.Lock()
	b := l.batch
	if b == nil {
		b = &commitBatch{done: make(chan struct{})}
		// A new batch is only ever created after the previous one was
		// sealed, i.e. while its commit is in flight (or finished). Link
		// to it so our waiters ride out its fsync on prev.done.
		if lb := l.lastBatch; lb != nil {
			select {
			case <-lb.done:
				l.lastBatch = nil
			default:
				b.prev = lb
			}
		}
		l.batch = b
		l.lastBatch = b
	}
	b.buf = appendFrame(b.buf, typ, payload)
	b.n++
	l.batchMu.Unlock()
	return Commit{l: l, b: b}, nil
}

// lingerRounds bounds the pre-seal yield loop in commitOwn. Each
// round costs one runtime.Gosched — near free when nothing else is
// runnable — so the bound only matters under sustained contention,
// where the loop exits early anyway once the batch stops growing.
const lingerRounds = 8

// commitOwn makes the batch b durable. If a concurrent commit already
// sealed and committed b while we queued on commitMu, it returns
// without touching the (newer) staging batch — draining the commitMu
// queue must not chop fresh batches into one-frame commits. Otherwise
// b is still the staging batch (batches seal strictly in staging
// order, and sealing happens only under commitMu, which we hold), so
// lingering and then committing the staging batch commits b.
func (l *Log) commitOwn(b *commitBatch) {
	l.commitMu.Lock()
	defer l.commitMu.Unlock()
	select {
	case <-b.done:
		return
	default:
	}
	// Linger before sealing: yield while the staging batch is still
	// growing, so appenders that are runnable right now get their
	// frames into this batch instead of paying for the next fsync.
	// Without this, the first waiter after an idle moment seals a
	// batch of one and group commit degenerates to a sync per record.
	// With a shared SyncGroup the flush is amortized across logs
	// anyway, and lingering here only delays this log's write past the
	// cohort it could have joined — so don't.
	if l.group == nil {
		last := -1
		for i := 0; i < lingerRounds; i++ {
			l.batchMu.Lock()
			n := l.batch.n // b unsealed ⇒ l.batch == b ≠ nil
			l.batchMu.Unlock()
			if n == last {
				break
			}
			last = n
			runtime.Gosched()
		}
	}
	l.commitStagingLocked()
}

// commitPending seals the staging batch (if any) and commits it:
// one write(2) for the whole batch, one fdatasync (unless NoSync).
// Used by Sync, Compact and Close to flush unwaited tickets; appenders
// go through commitOwn. commitMu makes seal→write→sync atomic with
// respect to other commits, so batches reach the file in staging order.
func (l *Log) commitPending() {
	l.commitMu.Lock()
	defer l.commitMu.Unlock()
	l.commitStagingLocked()
}

// commitStagingLocked seals and commits the current staging batch.
// Caller holds commitMu.
func (l *Log) commitStagingLocked() {
	l.batchMu.Lock()
	b := l.batch
	l.batch = nil
	l.batchMu.Unlock()
	if b == nil {
		return
	}
	l.mu.Lock()
	b.err = l.writeLocked(b.buf, b.n)
	if b.err == nil {
		l.commitBatches++
		l.commitFrames += int64(b.n)
	}
	l.mu.Unlock()
	close(b.done)
	// Drop chain pointers so committed batches can be collected.
	l.batchMu.Lock()
	b.prev = nil
	if l.lastBatch == b {
		l.lastBatch = nil
	}
	l.batchMu.Unlock()
}

// writeLocked writes one framed batch and syncs. Caller holds mu. On
// any failure the log is poisoned: the frame may be partially on disk,
// and a later append that succeeded past a torn frame would be
// acknowledged yet unrecoverable.
func (l *Log) writeLocked(frames []byte, n int) error {
	if l.failed != nil {
		return fmt.Errorf("wal: %s poisoned by earlier failure: %w", l.path, l.failed)
	}
	if l.f == nil {
		return fmt.Errorf("wal: append to closed log %s", l.path)
	}
	// One committed batch is one trace: a wal.commit root whose
	// children time the write and the sync. The exemplar id is taken
	// now because End scrubs the pooled span.
	commit := l.tracer.StartRoot("wal.commit")
	commit.SetAttr("log", l.base)
	commit.SetAttr("frames", strconv.Itoa(n))
	commitID := commit.TraceIDString()
	var start time.Time
	if l.ins != nil {
		start = time.Now()
	}
	app := commit.StartChild("wal.append")
	if _, err := l.f.Write(frames); err != nil {
		app.SetOutcome("error")
		app.End()
		commit.SetOutcome("error")
		commit.End()
		l.poisonLocked(err)
		return fmt.Errorf("wal: append to %s: %w", l.path, err)
	}
	app.End()
	if !l.noSync {
		var syncStart time.Time
		if l.ins != nil {
			syncStart = time.Now()
		}
		flush := commit.StartChild("wal.flush")
		var err error
		if l.group != nil {
			err = l.group.Sync()
		} else {
			err = l.f.Sync()
		}
		if err != nil {
			flush.SetOutcome("error")
			flush.End()
			commit.SetOutcome("error")
			commit.End()
			l.poisonLocked(err)
			return fmt.Errorf("wal: sync %s: %w", l.path, err)
		}
		flush.End()
		if l.ins != nil {
			l.ins.syncSec.Observe(time.Since(syncStart).Seconds())
		}
	}
	l.size += int64(len(frames))
	l.count += n
	if l.ins != nil {
		l.ins.appendSec.ObserveExemplar(time.Since(start).Seconds(), commitID)
		l.ins.batchFrames.Observe(float64(n))
	}
	commit.End()
	return nil
}

// poisonLocked records the first fatal write/sync error, flips the
// poisoned gauge, and emits the structured transition log. Caller
// holds mu.
func (l *Log) poisonLocked(err error) {
	l.failed = err
	if l.ins != nil {
		l.ins.poisoned.Set(1)
	}
	trace.Eventf(l.logf, "wal: event=log_poisoned log=%s err=%v", filepath.Base(l.path), err)
}

// appendFrame appends one framed record to dst.
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, typ)
	crc := crc32.Update(crc32.Checksum([]byte{typ}, castagnoli), castagnoli, payload)
	dst = binary.BigEndian.AppendUint32(dst, crc)
	return append(dst, payload...)
}

// compactPath is the temporary file Compact stages the rewrite in.
func compactPath(path string) string { return path + ".compact" }

// Compact atomically replaces the log's contents with the given
// records — the snapshot+truncate step that keeps recovery time bounded.
// The replacement is staged in a temp file, synced, and renamed over
// the log; a crash leaves either the complete old log or the complete
// new one. The caller must guarantee the records capture all state the
// discarded log entries produced, and that no append races the call.
func (l *Log) Compact(records []Record) error {
	if l.gc {
		// Flush any staged-but-uncommitted batch first so its frames
		// cannot land in the rewritten file after the snapshot.
		l.commitPending()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("wal: compact closed log %s", l.path)
	}
	tmpPath := compactPath(l.path)
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compact %s: %w", l.path, err)
	}
	var buf []byte
	for _, r := range records {
		if int64(len(r.Payload)) > MaxRecordBytes {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("wal: compact %s: record of %d bytes exceeds limit", l.path, len(r.Payload))
		}
		buf = appendFrame(buf, r.Type, r.Payload)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("wal: compact %s: write: %w", l.path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("wal: compact %s: sync: %w", l.path, err)
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("wal: compact %s: rename: %w", l.path, err)
	}
	// The rename is the commit point. Sync the directory so the new
	// name itself survives a crash (best-effort: not all platforms allow
	// syncing directories).
	if dir, err := os.Open(filepath.Dir(l.path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	old := l.f
	l.f = tmp
	old.Close()
	l.size = int64(len(buf))
	l.count = len(records)
	return nil
}

// Sync flushes the log to stable storage, committing any staged
// group-commit batch first. Useful with NoSync to place explicit
// durability points.
func (l *Log) Sync() error {
	if l.gc {
		l.commitPending()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	return l.f.Sync()
}

// Close commits any staged batch, syncs, and closes the log. Further
// appends fail.
func (l *Log) Close() error {
	if l.gc {
		l.commitPending()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
