// Package wal implements the write-ahead log under Sage's durable
// platform core. Every stateful layer of the platform — the privacy
// ledger (core.AccessControl) and the model & feature store
// (store.Store) — journals its mutations here *before* acknowledging
// them, so a crash at any instant loses at most work that was never
// acknowledged, never privacy spend that was. Recovery is replay: open
// the log, apply the surviving records in order, and the process is
// exactly where the last acknowledged operation left it.
//
// # Format
//
// The log is a single file of length-prefixed, checksummed records:
//
//	uint32 big-endian payload length
//	byte   record type (opaque to this package)
//	uint32 big-endian CRC-32C (Castagnoli) over type byte + payload
//	payload
//
// # Crash consistency
//
// Appends write the whole frame with one write(2) call and (unless
// Options.NoSync) fdatasync before returning, so an acknowledged append
// is on disk. A crash mid-append leaves a torn tail: a partial header,
// a partial payload, or a frame whose checksum does not match. Open
// detects all three, truncates the file back to the last intact record
// boundary, and reports the dropped bytes in Stats — replay never sees
// a half-written record, and the log is immediately appendable again.
// Corruption is treated as tail damage: the first bad frame ends
// recovery, and everything after it is discarded. That is the right
// semantics for a journal whose only writer appends (the only expected
// damage is at the end), and it is what makes the ledger's
// crash-consistency argument go through: the surviving records are
// always a *prefix* of the acknowledged-or-in-flight operations.
//
// # Compaction
//
// An append-only journal grows forever; Compact rewrites it as a
// snapshot. The caller provides the records that reconstruct current
// state (for the ledger, one snapshot record; for the store, one record
// per bundle); Compact writes them to a temporary file in the same
// directory, syncs it, and atomically renames it over the log. A crash
// at any point leaves either the old log or the new one, never a mix —
// rename(2) on the same filesystem is atomic. Compact requires the same
// single-writer discipline as Append: the caller must ensure no
// concurrent appends race the rewrite, or they would be lost with it.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// headerSize is the fixed frame prefix: length (4) + type (1) + crc (4).
const headerSize = 9

// MaxRecordBytes bounds one record's payload (64 MiB — comfortably
// above the largest bundle the replica tier accepts). A scanned length
// beyond it is treated as corruption, so a damaged length field cannot
// make recovery attempt a multi-gigabyte allocation.
const MaxRecordBytes = 64 << 20

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one journaled entry: a type byte the client dispatches on
// and an opaque payload.
type Record struct {
	Type    byte
	Payload []byte
}

// Options configures a log.
type Options struct {
	// NoSync disables the per-append fdatasync. Throughput rises by
	// orders of magnitude, durability drops to "whatever the OS flushed
	// before the crash" — recovery still sees a valid prefix (the torn-
	// tail scan handles partially-flushed frames), it may just be an
	// older one. Tests and benchmarks use it; a production daemon must
	// not.
	NoSync bool
}

// Stats reports what Open found.
type Stats struct {
	// Records is the number of intact records recovered.
	Records int
	// TornBytes counts bytes dropped from the tail: a partial frame
	// from a crash mid-append, or a frame whose checksum failed.
	TornBytes int64
	// Truncated is true when a torn or corrupt tail was cut off.
	Truncated bool
}

// Log is an append-only write-ahead log. Append and Compact are
// mutually excluded by an internal lock, but the single-writer
// discipline documented on Compact still applies: compaction snapshots
// state that appends mutate, so the two must be externally ordered.
type Log struct {
	mu     sync.Mutex
	path   string
	f      *os.File
	size   int64
	count  int
	noSync bool
	stats  Stats
}

// Open opens (creating if absent) the log at path, scans it, truncates
// any torn or corrupt tail, and returns the surviving records in append
// order. The returned log is positioned for appending.
func Open(path string, opts Options) (*Log, []Record, error) {
	// A leftover compaction temp file means a crash hit between writing
	// the replacement and renaming it; the rename never happened, so the
	// original log is authoritative and the temp is garbage.
	_ = os.Remove(compactPath(path))

	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	raw, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: read %s: %w", path, err)
	}
	records, offsets := scan(raw)
	good := offsets[len(offsets)-1]
	l := &Log{
		path:   path,
		f:      f,
		size:   good,
		count:  len(records),
		noSync: opts.NoSync,
		stats: Stats{
			Records:   len(records),
			TornBytes: int64(len(raw)) - good,
			Truncated: good < int64(len(raw)),
		},
	}
	if l.stats.Truncated {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: truncate torn tail of %s: %w", path, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("wal: sync %s: %w", path, err)
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: seek %s: %w", path, err)
	}
	return l, records, nil
}

// scan walks raw and returns the intact records plus every record
// *boundary*: offsets[0] = 0 and offsets[k] is the offset just past
// record k-1, so offsets[len(records)] is where the valid prefix ends.
// Scanning stops at the first torn or corrupt frame; everything after
// it is tail damage by the package's crash model.
func scan(raw []byte) ([]Record, []int64) {
	var records []Record
	offsets := []int64{0}
	off := int64(0)
	for {
		rest := raw[off:]
		if len(rest) < headerSize {
			return records, offsets
		}
		n := int64(binary.BigEndian.Uint32(rest))
		if n > MaxRecordBytes || int64(len(rest)) < headerSize+n {
			return records, offsets
		}
		typ := rest[4]
		sum := binary.BigEndian.Uint32(rest[5:9])
		payload := rest[headerSize : headerSize+n]
		crc := crc32.Update(crc32.Checksum([]byte{typ}, castagnoli), castagnoli, payload)
		if crc != sum {
			return records, offsets
		}
		records = append(records, Record{Type: typ, Payload: append([]byte(nil), payload...)})
		off += headerSize + n
		offsets = append(offsets, off)
	}
}

// RecordOffsets scans the log file at path and returns the byte offset
// of every intact record boundary (see scan): truncating the file at
// offsets[k] yields exactly the first k records. Fault-injection tests
// and recovery tooling use it to cut logs at precise points.
func RecordOffsets(path string) ([]int64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	_, offsets := scan(raw)
	return offsets, nil
}

// Stats returns what Open found (recovered record count, torn bytes).
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Path returns the log's file path.
func (l *Log) Path() string { return l.path }

// Size returns the log's current byte length.
func (l *Log) Size() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.size
}

// Records returns the number of records in the log (recovered plus
// appended since open, minus those rewritten away by Compact).
func (l *Log) Records() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Append journals one record: frame it, write it with a single write
// call, and (unless NoSync) sync before returning. When Append returns
// nil the record will survive any subsequent crash; on error the caller
// must not acknowledge the operation it was journaling.
func (l *Log) Append(typ byte, payload []byte) error {
	if int64(len(payload)) > MaxRecordBytes {
		return fmt.Errorf("wal: record of %d bytes exceeds limit %d", len(payload), int64(MaxRecordBytes))
	}
	frame := appendFrame(make([]byte, 0, headerSize+len(payload)), typ, payload)
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("wal: append to closed log %s", l.path)
	}
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: append to %s: %w", l.path, err)
	}
	if !l.noSync {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync %s: %w", l.path, err)
		}
	}
	l.size += int64(len(frame))
	l.count++
	return nil
}

// appendFrame appends one framed record to dst.
func appendFrame(dst []byte, typ byte, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, typ)
	crc := crc32.Update(crc32.Checksum([]byte{typ}, castagnoli), castagnoli, payload)
	dst = binary.BigEndian.AppendUint32(dst, crc)
	return append(dst, payload...)
}

// compactPath is the temporary file Compact stages the rewrite in.
func compactPath(path string) string { return path + ".compact" }

// Compact atomically replaces the log's contents with the given
// records — the snapshot+truncate step that keeps recovery time bounded.
// The replacement is staged in a temp file, synced, and renamed over
// the log; a crash leaves either the complete old log or the complete
// new one. The caller must guarantee the records capture all state the
// discarded log entries produced, and that no append races the call.
func (l *Log) Compact(records []Record) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("wal: compact closed log %s", l.path)
	}
	tmpPath := compactPath(l.path)
	tmp, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: compact %s: %w", l.path, err)
	}
	var buf []byte
	for _, r := range records {
		if int64(len(r.Payload)) > MaxRecordBytes {
			tmp.Close()
			os.Remove(tmpPath)
			return fmt.Errorf("wal: compact %s: record of %d bytes exceeds limit", l.path, len(r.Payload))
		}
		buf = appendFrame(buf, r.Type, r.Payload)
	}
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("wal: compact %s: write: %w", l.path, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("wal: compact %s: sync: %w", l.path, err)
	}
	if err := os.Rename(tmpPath, l.path); err != nil {
		tmp.Close()
		os.Remove(tmpPath)
		return fmt.Errorf("wal: compact %s: rename: %w", l.path, err)
	}
	// The rename is the commit point. Sync the directory so the new
	// name itself survives a crash (best-effort: not all platforms allow
	// syncing directories).
	if dir, err := os.Open(filepath.Dir(l.path)); err == nil {
		_ = dir.Sync()
		dir.Close()
	}
	old := l.f
	l.f = tmp
	old.Close()
	l.size = int64(len(buf))
	l.count = len(records)
	return nil
}

// Sync flushes the log to stable storage. Useful with NoSync to place
// explicit durability points (group commit).
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	return l.f.Sync()
}

// Close syncs and closes the log. Further appends fail.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
