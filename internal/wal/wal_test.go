package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// appendN writes n records with deterministic, distinguishable payloads
// and returns them.
func appendN(t *testing.T, l *Log, n int) []Record {
	t.Helper()
	var out []Record
	for i := 0; i < n; i++ {
		typ := byte(1 + i%3)
		payload := []byte(fmt.Sprintf("record-%03d-%s", i, string(bytes.Repeat([]byte{byte('a' + i%26)}, i%40))))
		if err := l.Append(typ, payload); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		out = append(out, Record{Type: typ, Payload: payload})
	}
	return out
}

func sameRecords(a, b []Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Type != b[i].Type || !bytes.Equal(a[i].Payload, b[i].Payload) {
			return false
		}
	}
	return true
}

func TestAppendReopenRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "test.wal")
	l, recs, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh log recovered %d records", len(recs))
	}
	want := appendN(t, l, 25)
	if l.Records() != 25 {
		t.Fatalf("Records() = %d, want 25", l.Records())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, got, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !sameRecords(got, want) {
		t.Fatalf("recovered records differ: got %d, want %d", len(got), len(want))
	}
	if st := l2.Stats(); st.Truncated || st.TornBytes != 0 {
		t.Fatalf("clean log reported truncation: %+v", st)
	}
	// The reopened log must be appendable, and the appends must survive
	// another reopen.
	if err := l2.Append(9, []byte("post-recovery")); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	_, got3, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got3) != 26 || got3[25].Type != 9 {
		t.Fatalf("append after reopen lost: %d records", len(got3))
	}
}

// TestTruncateAtEveryByte is the torn-tail matrix: a log cut at *every*
// byte offset must recover exactly the records whose frames fit below
// the cut, never an error, never a partial record.
func TestTruncateAtEveryByte(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "full.wal")
	l, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, l, 12)
	l.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	offsets, err := RecordOffsets(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(offsets) != 13 || offsets[len(offsets)-1] != int64(len(raw)) {
		t.Fatalf("offsets = %v, file len %d", offsets, len(raw))
	}

	// complete[c] = how many records survive a cut at byte c.
	complete := func(cut int64) int {
		n := 0
		for n+1 < len(offsets) && offsets[n+1] <= cut {
			n++
		}
		return n
	}

	cutPath := filepath.Join(dir, "cut.wal")
	for cut := int64(0); cut <= int64(len(raw)); cut++ {
		if err := os.WriteFile(cutPath, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, got, err := Open(cutPath, Options{})
		if err != nil {
			t.Fatalf("cut at %d: %v", cut, err)
		}
		wantN := complete(cut)
		if !sameRecords(got, want[:wantN]) {
			l.Close()
			t.Fatalf("cut at %d: recovered %d records, want %d", cut, len(got), wantN)
		}
		st := l.Stats()
		wantTorn := cut - offsets[wantN]
		if st.TornBytes != wantTorn || st.Truncated != (wantTorn > 0) {
			l.Close()
			t.Fatalf("cut at %d: stats %+v, want torn %d", cut, st, wantTorn)
		}
		// After recovery the file must be cut back to the record
		// boundary and appendable.
		if fi, _ := os.Stat(cutPath); fi.Size() != offsets[wantN] {
			l.Close()
			t.Fatalf("cut at %d: file not truncated to boundary: %d vs %d", cut, fi.Size(), offsets[wantN])
		}
		if err := l.Append(7, []byte("resume")); err != nil {
			t.Fatalf("cut at %d: append after recovery: %v", cut, err)
		}
		l.Close()
		_, again, err := Open(cutPath, Options{})
		if err != nil || len(again) != wantN+1 {
			t.Fatalf("cut at %d: reopen after resumed append: %d records, err %v", cut, len(again), err)
		}
	}
}

// TestCorruptChecksumTail flips one byte inside each record in turn and
// asserts recovery stops exactly before the damaged record.
func TestCorruptChecksumTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "full.wal")
	l, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, l, 10)
	l.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	offsets, err := RecordOffsets(path)
	if err != nil {
		t.Fatal(err)
	}

	corruptPath := filepath.Join(dir, "corrupt.wal")
	for rec := 0; rec < 10; rec++ {
		bad := append([]byte(nil), raw...)
		// Flip a payload byte of record rec (offset past the 9-byte
		// header).
		bad[offsets[rec]+headerSize] ^= 0xFF
		if err := os.WriteFile(corruptPath, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		l, got, err := Open(corruptPath, Options{})
		if err != nil {
			t.Fatalf("corrupt record %d: %v", rec, err)
		}
		if !sameRecords(got, want[:rec]) {
			t.Fatalf("corrupt record %d: recovered %d records, want %d", rec, len(got), rec)
		}
		if st := l.Stats(); !st.Truncated {
			t.Fatalf("corrupt record %d: truncation not reported", rec)
		}
		l.Close()
	}
}

// TestCorruptLengthField damages a length prefix so it points past the
// end of the file (torn) and beyond MaxRecordBytes (insane); both must
// end recovery at the previous boundary instead of erroring or
// allocating.
func TestCorruptLengthField(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "len.wal")
	l, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, l, 4)
	l.Close()
	raw, _ := os.ReadFile(path)
	offsets, _ := RecordOffsets(path)

	for _, firstByte := range []byte{0x7F, 0xFF} { // huge but < / > MaxRecordBytes
		bad := append([]byte(nil), raw...)
		bad[offsets[2]] = firstByte
		p := filepath.Join(dir, "bad.wal")
		if err := os.WriteFile(p, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		l, got, err := Open(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !sameRecords(got, want[:2]) {
			t.Fatalf("length 0x%02x: recovered %d records, want 2", firstByte, len(got))
		}
		l.Close()
	}
}

func TestCompactReplacesContents(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.wal")
	l, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 50)
	snap := []Record{
		{Type: 1, Payload: []byte("snapshot-of-everything")},
		{Type: 2, Payload: []byte("second-part")},
	}
	if err := l.Compact(snap); err != nil {
		t.Fatal(err)
	}
	if l.Records() != 2 {
		t.Fatalf("Records() after compact = %d", l.Records())
	}
	// Appends after compaction land after the snapshot.
	if err := l.Append(3, []byte("post-compact")); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, got, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantAll := append(append([]Record(nil), snap...), Record{Type: 3, Payload: []byte("post-compact")})
	if !sameRecords(got, wantAll) {
		t.Fatalf("post-compact contents wrong: %d records", len(got))
	}
}

// TestCompactCrashLeftover simulates a crash between staging the
// compaction file and renaming it: Open must ignore (and remove) the
// temp file and recover the original log.
func TestCompactCrashLeftover(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.wal")
	l, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := appendN(t, l, 8)
	l.Close()
	// A half-finished staging file from a crashed compaction.
	if err := os.WriteFile(compactPath(path), []byte("partial snapshot junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, got, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if !sameRecords(got, want) {
		t.Fatalf("leftover temp corrupted recovery: %d records", len(got))
	}
	if _, err := os.Stat(compactPath(path)); !os.IsNotExist(err) {
		t.Fatalf("stale compaction temp not removed: %v", err)
	}
}

func TestOversizeRecordRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.wal")
	l, _, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(1, make([]byte, MaxRecordBytes+1)); err == nil {
		t.Fatal("oversize append accepted")
	}
}

func TestClosedLogRejectsAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.wal")
	l, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := l.Append(1, []byte("x")); err == nil {
		t.Fatal("append to closed log accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}
