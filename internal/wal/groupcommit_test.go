package wal

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestGroupCommitConcurrentAppends hammers one group-commit log from
// many goroutines and asserts every acknowledged record survives a
// reopen — the journal-before-ack contract under contention.
func TestGroupCommitConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gc.wal")
	l, _, err := Open(path, Options{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	const (
		writers = 8
		perW    = 50
	)
	var wg sync.WaitGroup
	errs := make([]error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				payload := fmt.Appendf(nil, "w%02d-i%03d", w, i)
				if err := l.Append(byte(1+w%3), payload); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("writer %d: %v", w, err)
		}
	}
	if l.Records() != writers*perW {
		t.Fatalf("Records() = %d, want %d", l.Records(), writers*perW)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, got, err := Open(path, Options{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != writers*perW {
		t.Fatalf("recovered %d records, want %d", len(got), writers*perW)
	}
	// Every acknowledged record must be present exactly once, and each
	// writer's records must appear in its own append order (per-writer
	// order is what the ledger's per-shard lock guarantees externally).
	seen := make(map[string]int)
	perWriterNext := make([]int, writers)
	for _, r := range got {
		seen[string(r.Payload)]++
		var w, i int
		if _, err := fmt.Sscanf(string(r.Payload), "w%02d-i%03d", &w, &i); err != nil {
			t.Fatalf("unparseable payload %q", r.Payload)
		}
		if i != perWriterNext[w] {
			t.Fatalf("writer %d records out of order: got index %d, want %d", w, i, perWriterNext[w])
		}
		perWriterNext[w]++
	}
	for p, n := range seen {
		if n != 1 {
			t.Fatalf("record %q recovered %d times", p, n)
		}
	}
}

// TestGroupCommitAsyncStagingOrder pins that AppendAsync's staging
// order is the on-disk order even when Waits resolve out of order.
func TestGroupCommitAsyncStagingOrder(t *testing.T) {
	path := filepath.Join(t.TempDir(), "order.wal")
	l, _, err := Open(path, Options{GroupCommit: true, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	commits := make([]Commit, n)
	for i := 0; i < n; i++ {
		c, err := l.AppendAsync(1, fmt.Appendf(nil, "r%03d", i))
		if err != nil {
			t.Fatal(err)
		}
		commits[i] = c
	}
	// Wait in reverse order: any ticket's Wait must be able to drive the
	// commit regardless of who staged first.
	for i := n - 1; i >= 0; i-- {
		if err := commits[i].Wait(); err != nil {
			t.Fatalf("wait %d: %v", i, err)
		}
	}
	l.Close()
	_, got, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("recovered %d records, want %d", len(got), n)
	}
	for i, r := range got {
		if want := fmt.Sprintf("r%03d", i); string(r.Payload) != want {
			t.Fatalf("record %d = %q, want %q — staging order not preserved", i, r.Payload, want)
		}
	}
}

// TestGroupCommitCompactFlushesStaged ensures Compact commits staged
// frames before rewriting, rather than letting them land after the
// snapshot (which would double-apply them at replay).
func TestGroupCommitCompactFlushesStaged(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cf.wal")
	l, _, err := Open(path, Options{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	c, err := l.AppendAsync(1, []byte("staged"))
	if err != nil {
		t.Fatal(err)
	}
	snap := []Record{{Type: 9, Payload: []byte("snapshot")}}
	if err := l.Compact(snap); err != nil {
		t.Fatal(err)
	}
	// The staged frame was committed (durably) before the rewrite.
	if err := c.Wait(); err != nil {
		t.Fatalf("staged frame lost by compact: %v", err)
	}
	l.Close()
	_, got, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Payload) != "snapshot" {
		t.Fatalf("post-compact contents wrong: %d records", len(got))
	}
}

// TestGroupCommitClosedLog pins that appends staged after Close fail
// rather than ack silently.
func TestGroupCommitClosedLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "closed.wal")
	l, _, err := Open(path, Options{GroupCommit: true})
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := l.Append(1, []byte("late")); err == nil {
		t.Fatal("append after close acknowledged")
	}
}

// TestPoisonedLogRefusesAppends simulates a write failure (by closing
// the underlying fd out from under the log) and asserts the log poisons
// itself: the failed append errors, and so does every subsequent one.
func TestPoisonedLogRefusesAppends(t *testing.T) {
	for _, gc := range []bool{false, true} {
		t.Run(fmt.Sprintf("groupcommit=%v", gc), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "p.wal")
			l, _, err := Open(path, Options{GroupCommit: gc})
			if err != nil {
				t.Fatal(err)
			}
			if err := l.Append(1, []byte("good")); err != nil {
				t.Fatal(err)
			}
			l.f.Close() // simulate the device failing mid-run
			if err := l.Append(1, []byte("fails")); err == nil {
				t.Fatal("append over dead fd acknowledged")
			}
			if err := l.Append(1, []byte("after-failure")); err == nil {
				t.Fatal("append after failure acknowledged — log not poisoned")
			}
		})
	}
}

// TestInspectReportsFrames checks Inspect against a log with a healthy
// prefix and a checksum-corrupted tail record.
func TestInspectReportsFrames(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "i.wal")
	l, _, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 5)
	l.Close()

	rep, err := Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 5 || rep.Torn() || rep.GoodBytes != rep.TotalBytes {
		t.Fatalf("clean log report wrong: %+v", rep)
	}
	offsets, _ := RecordOffsets(path)
	for i, r := range rep.Records {
		if r.Offset != offsets[i] || !r.CRCOK {
			t.Fatalf("record %d: %+v, want offset %d", i, r, offsets[i])
		}
	}

	// Corrupt record 3's payload: Inspect should list records 0-2 as
	// intact, record 3 with CRCOK=false, and a torn tail from record 3
	// onward.
	raw, _ := os.ReadFile(path)
	raw[offsets[3]+headerSize] ^= 0xFF
	bad := filepath.Join(dir, "bad.wal")
	if err := os.WriteFile(bad, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = Inspect(bad)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 4 {
		t.Fatalf("corrupt log: %d records listed, want 4 (3 good + 1 bad)", len(rep.Records))
	}
	for i := 0; i < 3; i++ {
		if !rep.Records[i].CRCOK {
			t.Fatalf("record %d marked bad", i)
		}
	}
	if rep.Records[3].CRCOK {
		t.Fatal("corrupted record marked CRC-ok")
	}
	if !rep.Torn() || rep.GoodBytes != offsets[3] {
		t.Fatalf("torn tail not reported: %+v, want good=%d", rep, offsets[3])
	}

	// A truncated header (crash mid-append) is reported as torn with no
	// bad-frame entry.
	cut := filepath.Join(dir, "cut.wal")
	if err := os.WriteFile(cut, raw[:offsets[2]+4], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err = Inspect(cut)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != 2 || !rep.Torn() || rep.GoodBytes != offsets[2] {
		t.Fatalf("truncated-header report wrong: %+v", rep)
	}
}

// TestInspectMatchesScan cross-checks Inspect's frame layout against
// the append-side framing for every record size class.
func TestInspectMatchesScan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	l, _, err := Open(path, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{0, 1, 64, 255, 4096}
	for i, n := range sizes {
		if err := l.Append(byte(i), bytes.Repeat([]byte{byte(i)}, n)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	rep, err := Inspect(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Records) != len(sizes) {
		t.Fatalf("%d records, want %d", len(rep.Records), len(sizes))
	}
	off := int64(0)
	for i, r := range rep.Records {
		if r.Type != byte(i) || r.Length != int64(sizes[i]) || r.Offset != off {
			t.Fatalf("record %d: %+v, want type=%d len=%d off=%d", i, r, i, sizes[i], off)
		}
		off += headerSize + int64(sizes[i])
	}
	// Sanity: the length field really is where Inspect thinks it is.
	raw, _ := os.ReadFile(path)
	if got := binary.BigEndian.Uint32(raw[rep.Records[4].Offset:]); got != 4096 {
		t.Fatalf("frame layout drifted: length field reads %d", got)
	}
}
