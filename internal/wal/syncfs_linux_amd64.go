//go:build linux && amd64

package wal

// sysSYNCFS is syncfs(2) on linux/amd64 (asm-generic unistd lists it as
// 267; the amd64 table assigns 306).
const sysSYNCFS = 306
