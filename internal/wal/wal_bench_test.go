package wal

import (
	"fmt"
	"path/filepath"
	"testing"
)

// BenchmarkWALAppend measures the journaling cost the durable platform
// adds to every acknowledged ledger/store mutation. NoSync variants
// isolate the framing+write cost (the number group commit would
// amortize toward); the sync variant pays the real fdatasync and is
// hardware-bound, so only the NoSync numbers are committed as the
// BENCH_wal.json regression baseline.
func BenchmarkWALAppend(b *testing.B) {
	for _, size := range []int{64, 256, 4096} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			l, _, err := Open(filepath.Join(b.TempDir(), "bench.wal"), Options{NoSync: true})
			if err != nil {
				b.Fatal(err)
			}
			defer l.Close()
			payload := make([]byte, size)
			for i := range payload {
				payload[i] = byte(i)
			}
			b.SetBytes(int64(size))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := l.Append(1, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkWALAppendSync includes the per-append fdatasync a production
// daemon pays; the absolute number is storage-hardware-bound and not
// part of the regression gate.
func BenchmarkWALAppendSync(b *testing.B) {
	l, _, err := Open(filepath.Join(b.TempDir(), "bench.wal"), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := make([]byte, 256)
	b.SetBytes(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Append(1, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWALCompact(b *testing.B) {
	l, _, err := Open(filepath.Join(b.TempDir(), "bench.wal"), Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	records := make([]Record, 64)
	for i := range records {
		records[i] = Record{Type: 1, Payload: make([]byte, 1024)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := l.Compact(records); err != nil {
			b.Fatal(err)
		}
	}
}
