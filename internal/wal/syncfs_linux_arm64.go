//go:build linux && arm64

package wal

// sysSYNCFS is syncfs(2) on linux/arm64 (asm-generic syscall table).
const sysSYNCFS = 267
