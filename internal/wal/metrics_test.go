package wal

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/metrics"
)

// TestLogInstrumentation opens an instrumented log, appends through
// it, and checks the exposition: parseable, append/sync counts match,
// and poisoning flips the gauge and emits the structured transition
// log.
func TestLogInstrumentation(t *testing.T) {
	reg := metrics.New()
	var logged []string
	l, _, err := Open(filepath.Join(t.TempDir(), "m.wal"), Options{
		Metrics: reg,
		Logf:    func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := 0; i < 3; i++ {
		if err := l.Append(1, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}

	scrape := func() metrics.Families {
		var b strings.Builder
		if err := reg.TextExpose(&b); err != nil {
			t.Fatal(err)
		}
		fams, err := metrics.Parse(strings.NewReader(b.String()))
		if err != nil {
			t.Fatalf("exposition does not parse: %v\n%s", err, b.String())
		}
		return fams
	}

	fams := scrape()
	lbl := map[string]string{"log": "m.wal"}
	if v, ok := fams.Value("sage_wal_append_seconds_count", lbl); !ok || v != 3 {
		t.Errorf("append count = %v (found %v), want 3", v, ok)
	}
	if v, ok := fams.Value("sage_wal_poisoned", lbl); !ok || v != 0 {
		t.Errorf("poisoned = %v (found %v), want 0", v, ok)
	}
	if v, ok := fams.Value("sage_wal_records", lbl); !ok || v != 3 {
		t.Errorf("records gauge = %v (found %v), want 3", v, ok)
	}

	// Force a write failure: closing the file under the log makes the
	// next append fail, which must poison the log, flip the gauge, and
	// emit the structured event.
	l.mu.Lock()
	l.f.Close()
	l.mu.Unlock()
	if err := l.Append(1, []byte("doomed")); err == nil {
		t.Fatal("append to a closed file unexpectedly succeeded")
	}
	if v, ok := scrape().Value("sage_wal_poisoned", lbl); !ok || v != 1 {
		t.Errorf("poisoned after failure = %v (found %v), want 1", v, ok)
	}
	found := false
	for _, line := range logged {
		if strings.Contains(line, "event=log_poisoned") && strings.Contains(line, "log=m.wal") {
			found = true
		}
	}
	if !found {
		t.Errorf("no structured poison log emitted; got %q", logged)
	}
}
