//go:build !linux || !(amd64 || arm64)

package wal

import (
	"errors"
	"os"
)

const syncfsSupported = false

func syncfs(*os.File) error {
	return errors.New("wal: syncfs unsupported on this platform")
}
