package wal

import (
	"errors"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// SyncGroup coalesces the durability flushes of several logs that live
// on the same filesystem — the sharded ledger's segments — into one
// filesystem-wide sync (syncfs on Linux). A per-file fdatasync after an
// append forces a journal commit, and journal commits from different
// files serialize on the filesystem's single journal, so N segments
// syncing concurrently pay nearly N sequential flush latencies. One
// syncfs issued after all of a cohort's writes covers every member for
// the price of a single flush.
//
// Correctness: a member joins the cohort only after its write(2) has
// returned, and the cohort is sealed before the flush is issued, so the
// flush covers every member's bytes. Per-log write ordering (the torn-
// tail prefix property) is untouched — SyncGroup replaces only the
// flush, not the write path. A flush failure is sticky: the group and
// every log that was waiting on it fail closed, exactly like a
// poisoned per-file sync.
type SyncGroup struct {
	dir *os.File
	mu  sync.Mutex // guards cur, last, err
	cur *syncCohort
	// last is the most recently created cohort, used to chain a new
	// cohort to an in-flight predecessor (same pattern as the
	// group-commit batch chain — see commitBatch).
	last *syncCohort
	err  error // sticky: first flush failure, or closed
	// Optional instrumentation, set once by Instrument before the group
	// is used: the syncfs stall histogram and the cohort-size histogram
	// (the cross-log flush amortization factor).
	syncSec    *metrics.Histogram
	cohortSize *metrics.Histogram
}

// Instrument registers the group's flush metrics in reg. Call before
// the first Sync; an uninstrumented group pays one nil check per flush.
func (g *SyncGroup) Instrument(reg *metrics.Registry) {
	g.syncSec = reg.Histogram("sage_wal_syncfs_seconds",
		"Latency of one filesystem-wide flush (syncfs).", metrics.LatencyBuckets())
	g.cohortSize = reg.Histogram("sage_wal_syncfs_cohort_size",
		"Member syncs amortized by one filesystem-wide flush.", metrics.SizeBuckets())
}

// syncCohort is one group flush in flight: members' writes all
// happened-before seal, seal happens-before the flush.
type syncCohort struct {
	n      int // members, guarded by SyncGroup.mu
	err    error
	done   chan struct{}
	prev   *syncCohort
	driver atomic.Bool
}

// SyncGroupSupported reports whether this platform has a usable
// filesystem-wide sync primitive. When false, NewSyncGroup fails and
// callers fall back to per-file syncs.
func SyncGroupSupported() bool { return syncfsSupported }

// NewSyncGroup opens a group anchored at dir (any path on the target
// filesystem).
func NewSyncGroup(dir string) (*SyncGroup, error) {
	if !syncfsSupported {
		return nil, errors.New("wal: filesystem-wide sync not supported on this platform")
	}
	f, err := os.Open(dir)
	if err != nil {
		return nil, err
	}
	return &SyncGroup{dir: f}, nil
}

// Sync makes every write issued by the caller before this call durable.
// Concurrent callers share one flush.
func (g *SyncGroup) Sync() error {
	g.mu.Lock()
	if g.err != nil {
		err := g.err
		g.mu.Unlock()
		return err
	}
	c := g.cur
	if c == nil {
		c = &syncCohort{done: make(chan struct{})}
		if lc := g.last; lc != nil {
			select {
			case <-lc.done:
				g.last = nil
			default:
				c.prev = lc
			}
		}
		g.cur = c
		g.last = c
	}
	c.n++
	g.mu.Unlock()

	// One member drives the flush; the rest park on done. The driver
	// first rides out the predecessor's flush — that window is where
	// the rest of the cohort accumulates.
	if c.driver.CompareAndSwap(false, true) {
		if c.prev != nil {
			<-c.prev.done
		}
		// Linger: yield while members are still arriving, so writers
		// that are runnable right now make this flush instead of
		// paying for the next one.
		lastN := -1
		for i := 0; i < lingerRounds; i++ {
			g.mu.Lock()
			n := c.n
			g.mu.Unlock()
			if n == lastN {
				break
			}
			lastN = n
			runtime.Gosched()
		}
		g.mu.Lock()
		if g.cur == c {
			g.cur = nil // seal: later callers start the next cohort
		}
		members := c.n // stable after seal: no caller can join a sealed cohort
		g.mu.Unlock()
		var start time.Time
		if g.syncSec != nil {
			start = time.Now()
		}
		c.err = syncfs(g.dir)
		if g.syncSec != nil {
			g.syncSec.Observe(time.Since(start).Seconds())
			g.cohortSize.Observe(float64(members))
		}
		if c.err != nil {
			g.mu.Lock()
			g.err = c.err
			g.mu.Unlock()
		}
		close(c.done)
		g.mu.Lock()
		c.prev = nil
		if g.last == c {
			g.last = nil
		}
		g.mu.Unlock()
	}
	<-c.done
	return c.err
}

// Close releases the group. Callers must close (or otherwise quiesce)
// the member logs first.
func (g *SyncGroup) Close() error {
	g.mu.Lock()
	if g.err == nil {
		g.err = errors.New("wal: sync group closed")
	}
	g.mu.Unlock()
	return g.dir.Close()
}
