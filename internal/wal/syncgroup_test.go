package wal

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
)

// TestSyncGroupMultiLogDurability drives concurrent appenders over
// several logs sharing one SyncGroup and checks per-log exactly-once,
// order-preserving recovery — the flush substitution must not change
// any prefix/ordering semantics.
func TestSyncGroupMultiLogDurability(t *testing.T) {
	if !SyncGroupSupported() {
		t.Skip("no filesystem-wide sync on this platform")
	}
	dir := t.TempDir()
	g, err := NewSyncGroup(dir)
	if err != nil {
		t.Fatal(err)
	}
	const nlogs, writers, perWriter = 4, 8, 25
	logs := make([]*Log, nlogs)
	for i := range logs {
		l, _, err := Open(filepath.Join(dir, fmt.Sprintf("seg%d.wal", i)), Options{GroupCommit: true, SyncGroup: g})
		if err != nil {
			t.Fatal(err)
		}
		logs[i] = l
	}
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				l := logs[(w+i)%nlogs]
				payload := []byte(fmt.Sprintf("w%d-%d", w, i))
				if err := l.Append(1, payload); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, l := range logs {
		l.Close()
	}
	g.Close()

	// Recover every log; per-writer sequence numbers must be strictly
	// increasing within each log (append order preserved) and the union
	// exactly the written set.
	seen := map[string]bool{}
	for i := range logs {
		_, recs, err := Open(filepath.Join(dir, fmt.Sprintf("seg%d.wal", i)), Options{})
		if err != nil {
			t.Fatal(err)
		}
		lastPerWriter := map[byte]int{}
		for _, r := range recs {
			s := string(r.Payload)
			if seen[s] {
				t.Fatalf("record %q recovered twice", s)
			}
			seen[s] = true
			var w, seq int
			fmt.Sscanf(s, "w%d-%d", &w, &seq)
			if last, ok := lastPerWriter[byte(w)]; ok && seq <= last {
				t.Fatalf("log %d: writer %d order violated: %d after %d", i, w, seq, last)
			}
			lastPerWriter[byte(w)] = seq
		}
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("recovered %d records, want %d", len(seen), writers*perWriter)
	}
}

// TestSyncGroupClosedFailsAppends pins the sticky failure: a closed
// (or failed) group refuses further flushes and the affected log
// refuses further appends rather than acknowledging non-durable writes.
func TestSyncGroupClosedFailsAppends(t *testing.T) {
	if !SyncGroupSupported() {
		t.Skip("no filesystem-wide sync on this platform")
	}
	dir := t.TempDir()
	g, err := NewSyncGroup(dir)
	if err != nil {
		t.Fatal(err)
	}
	l, _, err := Open(filepath.Join(dir, "seg.wal"), Options{GroupCommit: true, SyncGroup: g})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
	g.Close()
	if err := l.Append(1, []byte("after-close")); err == nil {
		t.Fatal("append acknowledged after its sync group closed")
	}
	// Poisoned: even a later append must fail fast.
	if err := l.Append(1, []byte("again")); err == nil {
		t.Fatal("poisoned log accepted an append")
	}
}
