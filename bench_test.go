package sage_test

// One benchmark per table/figure of the paper's evaluation (§5), at
// reduced scale so `go test -bench=.` completes on a laptop, plus
// ablation benches for the design choices DESIGN.md calls out and
// micro-benchmarks for the hot substrate paths. cmd/sage-experiments
// runs the same experiments at full scale.

import (
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/experiments"
	"repro/internal/ml"
	"repro/internal/privacy"
	"repro/internal/rng"
	"repro/internal/taxi"
	"repro/internal/validation"
	"repro/internal/workload"
)

// --- Table 2: validator violation rates -------------------------------

func BenchmarkTab2ViolationRates(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Tab2(experiments.Tab2Options{
			Runs:    4,
			Stream:  80000,
			Holdout: 20000,
			Etas:    []float64{0.05},
			Modes:   []validation.Mode{validation.ModeNoSLA, validation.ModeSage},
			Seed:    uint64(100 + i),
		})
		experiments.PrintTab2(io.Discard, rows)
	}
}

// --- Fig. 5: DP impact on model quality -------------------------------

func BenchmarkFig5LearningCurves(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig5(experiments.Fig5Options{
			Sizes:   []int{10000, 40000},
			Holdout: 20000,
			Models:  []string{"Taxi-LR"},
			Seed:    uint64(200 + i),
		})
		experiments.PrintFig5(io.Discard, pts)
	}
}

// --- Fig. 6: SLAed validation sample complexity ------------------------

func BenchmarkFig6SampleComplexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Fig6(experiments.Fig6Options{
			MaxStream:        150000,
			Models:           []string{"Taxi-LR"},
			TargetsPerConfig: 1,
			Modes:            []validation.Mode{validation.ModeNoSLA, validation.ModeSage},
			Seed:             uint64(300 + i),
		})
		experiments.PrintFig6(io.Discard, pts)
	}
}

// --- Fig. 7: block vs query composition --------------------------------

func BenchmarkFig7BlockVsQuery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		o := experiments.Fig7Options{
			Sizes:        []int{20000, 80000},
			LRBlockSizes: []int{10000},
			Targets:      []float64{0.007},
			MaxStream:    160000,
			Holdout:      20000,
			SkipNN:       true,
			Seed:         uint64(400 + i),
		}
		experiments.PrintFig7(io.Discard, experiments.Fig7Quality(o), experiments.Fig7Accept(o))
	}
}

// --- Fig. 8: workload release times ------------------------------------

func BenchmarkFig8ReleaseTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8(experiments.Fig8Options{
			TaxiRates:   []float64{0.2, 0.6},
			CriteoRates: []float64{0.3},
			Hours:       500,
			Seed:        uint64(500 + i),
		})
		experiments.PrintFig8(io.Discard, res)
	}
}

// --- Ablations ----------------------------------------------------------

// BenchmarkAblationComposition compares how many ε=0.02 queries one
// block affords under basic vs strong vs adaptive-strong composition —
// the accounting-arithmetic choice of DESIGN.md §5.
func BenchmarkAblationComposition(b *testing.B) {
	arith := map[string]privacy.CompositionArithmetic{
		"basic":           privacy.BasicArithmetic{},
		"strong":          privacy.StrongArithmetic{DeltaSlack: 5e-7},
		"adaptive-strong": privacy.AdaptiveStrongArithmetic{EpsG: 1, DeltaSlack: 5e-7},
	}
	for name, a := range arith {
		b.Run(name, func(b *testing.B) {
			queries := 0
			for i := 0; i < b.N; i++ {
				ac := core.NewAccessControl(core.Policy{
					Global:     privacy.MustBudget(1, 1e-6),
					Arithmetic: a,
				})
				ac.RegisterBlock(1)
				small := privacy.MustBudget(0.02, 1e-9)
				n := 0
				for n < 5000 {
					if err := ac.Request([]data.BlockID{1}, small); err != nil {
						break
					}
					n++
				}
				queries = n
			}
			b.ReportMetric(float64(queries), "queries/block")
		})
	}
}

// BenchmarkAblationBudgetStrategy isolates the §5.4 conserve-vs-
// aggressive choice at high load.
func BenchmarkAblationBudgetStrategy(b *testing.B) {
	for _, strat := range []workload.Strategy{workload.BlockConserve, workload.BlockAggressive} {
		b.Run(strat.String(), func(b *testing.B) {
			var rel float64
			for i := 0; i < b.N; i++ {
				st := workload.Run(workload.Config{
					Strategy: strat, EpsG: 1, BlockSize: 16000,
					ArrivalRate: 0.7, Hours: 500, Seed: uint64(600 + i),
				})
				rel = st.AvgReleaseTime
			}
			b.ReportMetric(rel, "hours/release")
		})
	}
}

// BenchmarkAblationUserBlocks compares time-keyed (event-level) against
// user-keyed (user-level, §4.4) block partitioning on insert+read.
func BenchmarkAblationUserBlocks(b *testing.B) {
	stream := taxi.Pipeline(20000, 0, 24*14, 0, 0, 9)
	parts := map[string]data.Partitioner{
		"time/24": data.TimePartitioner{Window: 24},
		"user":    data.UserPartitioner{},
	}
	for name, part := range parts {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				db := data.NewGrowingDatabase(part)
				db.Insert(stream.Examples...)
				_ = db.Read(db.Blocks())
			}
		})
	}
}

// --- Micro-benchmarks on the substrate hot paths -----------------------

func BenchmarkLaplaceMechanism(b *testing.B) {
	r := rng.New(1)
	m := privacy.LaplaceMechanism{Sensitivity: 1, Epsilon: 0.5}
	for i := 0; i < b.N; i++ {
		_ = m.Release(float64(i), r)
	}
}

func BenchmarkRDPAccountantEpsilon(b *testing.B) {
	acct := privacy.NewRDPAccountant()
	acct.AddSampledGaussianSteps(0.01, 1.1, 1000)
	for i := 0; i < b.N; i++ {
		_ = acct.Epsilon(1e-6)
	}
}

func BenchmarkBlockAccountingRequest(b *testing.B) {
	ac := core.NewAccessControl(core.Policy{Global: privacy.MustBudget(1e9, 1)})
	ids := make([]data.BlockID, 30)
	for i := range ids {
		ids[i] = data.BlockID(i)
		ac.RegisterBlock(ids[i])
	}
	req := privacy.MustBudget(0.001, 1e-12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ac.Request(ids, req); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAdaSSPTrain(b *testing.B) {
	ds := taxi.Pipeline(20000, 0, 24*7, 0, 0, 10)
	cfg := ml.AdaSSPConfig{
		Budget: privacy.MustBudget(1, 1e-6),
		Rho:    0.1, FeatureBound: 2.5, LabelBound: 1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = ml.TrainAdaSSP(ds, cfg, rng.New(uint64(i)))
	}
}

func BenchmarkDPSGDEpoch(b *testing.B) {
	ds := taxi.Pipeline(5000, 0, 24*7, 0, 0, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := ml.NewSGDLinearRegression(taxi.FeatureDim)
		ml.TrainSGD(m, ds, ml.SGDConfig{
			LearningRate: 0.05, Epochs: 1, BatchSize: 256,
			DP: true, ClipNorm: 1, Budget: privacy.MustBudget(1, 1e-6),
		}, rng.New(uint64(i)))
	}
}

func BenchmarkLossValidatorAccept(b *testing.B) {
	losses := make([]float64, 100000)
	for i := range losses {
		losses[i] = 0.003
	}
	v := validation.LossValidator{
		Config: validation.Config{Mode: validation.ModeSage, Eta: 0.05, Epsilon: 0.5},
		Target: 0.005, B: 1,
	}
	r := rng.New(12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = v.Accept(losses, r)
	}
}

func BenchmarkTaxiGenerate(b *testing.B) {
	gen := taxi.NewGenerator(taxi.Config{}, 13)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = gen.Generate(10000, 0, 24)
	}
	// Each op generates 10000 examples (not bytes — SetBytes would
	// render a bogus MB/s column); report the rate explicitly.
	b.ReportMetric(10000, "examples/op")
	b.ReportMetric(10000*float64(b.N)/b.Elapsed().Seconds(), "examples/s")
}
