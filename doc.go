// Package sage is a from-scratch Go reproduction of "Privacy Accounting
// and Quality Control in the Sage Differentially Private ML Platform"
// (Lécuyer, Spahn, Vodrahalli, Geambasu, Hsu — SOSP 2019).
//
// Sage enforces one global (εg, δg) differential-privacy guarantee over
// every model and statistic released from a sensitive data stream. The
// two contributions reproduced here are:
//
//   - Block composition (internal/core): privacy-loss accounting at the
//     granularity of stream blocks, so pipelines train on overlapping,
//     adaptively chosen windows while the stream-wide loss stays at the
//     maximum per-block loss — new blocks arrive with fresh budget and
//     the platform never runs out.
//   - Privacy-adaptive training (internal/adaptive) with SLAed
//     validation (internal/validation): retry loops that double data or
//     budget until a statistically rigorous, DP-corrected ACCEPT test
//     passes.
//
// Substrates — DP mechanisms with an RDP accountant (internal/privacy),
// AdaSSP and DP-SGD trainers (internal/ml), DP statistics
// (internal/stats), a TFX-like pipeline framework (internal/pipeline),
// synthetic Taxi/Criteo streams (internal/taxi, internal/criteo), and a
// workload simulator (internal/workload) — are all implemented on the
// Go standard library alone.
//
// # Performance architecture
//
// Every evaluation sweep (internal/experiments Fig. 5–8, Table 2, and
// workload.Sweep) runs on the deterministic parallel experiment engine
// of internal/parallel: the sweep's nested loops are flattened into an
// indexed grid of independent cells, dispatched to a bounded worker
// pool, and collected in grid order. Determinism is preserved by
// construction — each cell derives its RNG with rng.MixSeed from the
// cell's own coordinates (pipeline, target, mode, size, run), never
// from scheduling — so any worker count, including 1, produces
// bit-identical figures. A Workers option on every experiment's
// Options struct (and -workers on cmd/sage-experiments) bounds the
// concurrency; the default is runtime.GOMAXPROCS(0). The determinism
// regression tests in internal/experiments pin this contract down.
//
// On top of the per-sweep engine sits a process-wide shared scheduler
// (parallel.Pool + parallel.SetGlobal): one bounded worker pool that
// every sweep submits its cells into, draining batches FIFO with a
// caller-runs policy (submitters help their own batch, so nested
// submissions cannot deadlock). cmd/sage-experiments -pipeline installs
// it for -exp all, running the experiments concurrently so the tail of
// one grid overlaps the head of the next instead of idling at a
// per-experiment barrier; buffered per-experiment output keeps stdout
// byte-identical to a sequential run. Because scheduling never feeds
// randomness, interleaving whole experiments is as invisible as
// interleaving cells — pinned by the shared-pool determinism test.
//
// DP-SGD noise calibration (privacy.CalibrateSGDNoise) is memoized
// process-wide by (N, BatchSize, Epochs, ε, δ): the sweeps re-run
// identical plans thousands of times, and a cache hit replaces a
// ~160 ms RDP bracketing search with a lock-free lookup.
// privacy.SGDCalibrationStats exposes the hit/miss counters, which
// cmd/sage-experiments reports after every run.
//
// # Serving layer
//
// internal/store is the wide-access Model & Feature Store plus the
// Serving Infrastructure of Fig. 1. Published bundles are deep-copied
// (releases are immutable under the §2.2 threat model) and served over
// HTTP: GET /models lists releases, GET /models/{name}/provenance
// exposes the audit view (blocks read, budget spent, validator
// decision), POST /predict answers one row, POST /predict/batch runs N
// rows through one cached model instantiation with per-row validation
// errors reported positionally, and GET /features serves the bundle's
// released aggregate tables (Listing 1's per-hour speed join; &index=
// for single-value serving-time joins). Models implement a
// ml.BatchPredictor fast path; scratch-sharing models (the MLP,
// ml.SerialPredictor) are served from a pool of prediction clones
// (ml.ScratchCloner: shared read-only parameters, private scratch), so
// concurrent connections predict in parallel instead of serializing
// behind one lock — models that cannot clone fall back to a
// per-instance lock taken once per batch. `sagectl serve` runs the
// whole loop — stream → DP aggregate → pipelines → publish → serve;
// BENCH_serving.json records HTTP-level throughput (~79K rows/s
// batched at 256 rows vs ~25K rows/s singleton on taxi
// dimensionality).
//
// Underneath every handler sits a connection-level fast path. The
// immutable read endpoints (model list, provenance, whole feature
// tables) are served from pre-encoded JSON keyed on the store's
// generation counter: the store only changes on publish, so responses
// replay byte-for-byte until a publish flushes the cache. The batch
// predict path pools its whole working set (decoded row buffers, the
// valid/position split, prediction outputs, and the response encode
// buffer) in a sync.Pool, and decodes request bodies with a streaming
// token decoder behind http.MaxBytesReader — a warm 256-row request
// runs in ~370 allocations instead of ~2200, and an oversized body is
// abandoned at the row limit instead of being materialized.
//
// # Replicated serving tier
//
// internal/replica completes Fig. 1's last arrow — accepted models
// "bundled with feature transformation operators and pushed into
// serving" — as a replicated tier. A trainer-side Publisher owns the
// authoritative store and pushes gob-encoded bundles to N replica
// Servers over HTTP; each replica applies them into a local store and
// serves the identical read API through the *same* store.Server
// handlers (shared code, so primary and replicas cannot drift — the
// e2e test asserts byte-identical responses across all of them).
//
// The push protocol is versioned and idempotent. Versions are assigned
// once by the publisher's store and travel inside the bundle; a replica
// accepts version watermark+1 (atomically, under its store's write
// lock, so a racing /predict sees old or new but never half), acks
// duplicates after verifying the release's canonical digest
// (internal/core's audit serialization — gob can't serve here because
// it encodes maps in iteration order), and answers out-of-order pushes
// with a 409 carrying its applied-version watermark, from which the
// publisher backfills in order. Late joiners are just the degenerate
// case: watermark 0, backfill everything (Publisher.Sync). Transport
// errors retry with exponential backoff; divergent releases (same
// version, different digest) are permanent errors and never retried —
// a release can be repeated, never replaced. `sagectl replica` runs a
// replica; `sagectl serve -push <urls>` publishes through the tier.
// BENCH_replica.json records push latency and per-replica throughput.
//
// The substrate's hot kernels are tuned for the sweeps' scale: Gram
// accumulation exploits outer-product symmetry (upper triangle +
// one mirror) and one-hot sparsity, Cholesky factorization and solves
// run on contiguous row slices, power iteration reuses its work
// buffers, DP-SGD realizes Poisson sampling with geometric skips
// (O(q·n) draws per step instead of n) and pools its gradient scratch,
// and the SLAed validators stream over losses without copying.
// BENCH_baseline.json and BENCH_optimized.json record the measured
// before/after of `go test -bench=. -benchmem`.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate every table and figure of the paper's
// evaluation at reduced scale; cmd/sage-experiments runs them at full
// scale.
package sage
