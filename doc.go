// Package sage is a from-scratch Go reproduction of "Privacy Accounting
// and Quality Control in the Sage Differentially Private ML Platform"
// (Lécuyer, Spahn, Vodrahalli, Geambasu, Hsu — SOSP 2019).
//
// Sage enforces one global (εg, δg) differential-privacy guarantee over
// every model and statistic released from a sensitive data stream. The
// two contributions reproduced here are:
//
//   - Block composition (internal/core): privacy-loss accounting at the
//     granularity of stream blocks, so pipelines train on overlapping,
//     adaptively chosen windows while the stream-wide loss stays at the
//     maximum per-block loss — new blocks arrive with fresh budget and
//     the platform never runs out.
//   - Privacy-adaptive training (internal/adaptive) with SLAed
//     validation (internal/validation): retry loops that double data or
//     budget until a statistically rigorous, DP-corrected ACCEPT test
//     passes.
//
// Substrates — DP mechanisms with an RDP accountant (internal/privacy),
// AdaSSP and DP-SGD trainers (internal/ml), DP statistics
// (internal/stats), a TFX-like pipeline framework (internal/pipeline),
// synthetic Taxi/Criteo streams (internal/taxi, internal/criteo), and a
// workload simulator (internal/workload) — are all implemented on the
// Go standard library alone.
//
// # Performance architecture
//
// Every evaluation sweep (internal/experiments Fig. 5–8, Table 2, and
// workload.Sweep) runs on the deterministic parallel experiment engine
// of internal/parallel: the sweep's nested loops are flattened into an
// indexed grid of independent cells, dispatched to a bounded worker
// pool, and collected in grid order. Determinism is preserved by
// construction — each cell derives its RNG with rng.MixSeed from the
// cell's own coordinates (pipeline, target, mode, size, run), never
// from scheduling — so any worker count, including 1, produces
// bit-identical figures. A Workers option on every experiment's
// Options struct (and -workers on cmd/sage-experiments) bounds the
// concurrency; the default is runtime.GOMAXPROCS(0). The determinism
// regression tests in internal/experiments pin this contract down.
//
// On top of the per-sweep engine sits a process-wide shared scheduler
// (parallel.Pool + parallel.SetGlobal): one bounded worker pool that
// every sweep submits its cells into, with a caller-runs policy
// (submitters help their own batch, so nested submissions cannot
// deadlock). Workers drain longest-expected-cell-first: each submission
// carries a per-cell cost hint (parallel.ForEachWeighted; FIFO among
// equal weights), so the expensive grids — fig. 7's DP-SGD cells, the
// big-block workload sweeps — start early instead of becoming the
// straggler tail after every cheap batch has drained.
// cmd/sage-experiments -pipeline installs the pool for -exp all,
// running the experiments concurrently so the tail of one grid overlaps
// the head of the next instead of idling at a per-experiment barrier;
// buffered per-experiment output keeps stdout byte-identical to a
// sequential run. Because scheduling never feeds randomness,
// interleaving whole experiments is as invisible as interleaving cells
// — pinned by the shared-pool determinism test.
//
// DP-SGD noise calibration (privacy.CalibrateSGDNoise) is memoized
// process-wide by (N, BatchSize, Epochs, ε, δ): the sweeps re-run
// identical plans thousands of times, and a cache hit replaces a
// ~160 ms RDP bracketing search with a lock-free lookup.
// privacy.SGDCalibrationStats exposes the hit/miss counters, which
// cmd/sage-experiments reports after every run.
//
// # Serving layer
//
// internal/store is the wide-access Model & Feature Store plus the
// Serving Infrastructure of Fig. 1. Published bundles are deep-copied
// (releases are immutable under the §2.2 threat model) and served over
// HTTP: GET /models lists releases, GET /models/{name}/provenance
// exposes the audit view (blocks read, budget spent, validator
// decision), POST /predict answers one row, POST /predict/batch runs N
// rows through one cached model instantiation with per-row validation
// errors reported positionally, and GET /features serves the bundle's
// released aggregate tables (Listing 1's per-hour speed join; &index=
// for single-value serving-time joins). Models implement a
// ml.BatchPredictor fast path; scratch-sharing models (the MLP,
// ml.SerialPredictor) are served from a pool of prediction clones
// (ml.ScratchCloner: shared read-only parameters, private scratch), so
// concurrent connections predict in parallel instead of serializing
// behind one lock — models that cannot clone fall back to a
// per-instance lock taken once per batch. `sagectl serve` runs the
// whole loop — stream → DP aggregate → pipelines → publish → serve;
// BENCH_serving.json records HTTP-level throughput (~79K rows/s
// batched at 256 rows vs ~25K rows/s singleton on taxi
// dimensionality).
//
// Underneath every handler sits a connection-level fast path. The
// immutable read endpoints (model list, provenance, whole feature
// tables) are served from pre-encoded JSON keyed on the store's
// generation counter: the store only changes on publish, so responses
// replay byte-for-byte until a publish flushes the cache. The batch
// predict path pools its whole working set (decoded row buffers, the
// valid/position split, prediction outputs, and the response encode
// buffer) in a sync.Pool, and decodes request bodies with a streaming
// token decoder behind http.MaxBytesReader — a warm 256-row request
// runs in ~370 allocations instead of ~2200, and an oversized body is
// abandoned at the row limit instead of being materialized.
//
// # Replicated serving tier
//
// internal/replica completes Fig. 1's last arrow — accepted models
// "bundled with feature transformation operators and pushed into
// serving" — as a replicated tier. A trainer-side Publisher owns the
// authoritative store and pushes gob-encoded bundles to N replica
// Servers over HTTP; each replica applies them into a local store and
// serves the identical read API through the *same* store.Server
// handlers (shared code, so primary and replicas cannot drift — the
// e2e test asserts byte-identical responses across all of them).
//
// The push protocol is versioned and idempotent. Versions are assigned
// once by the publisher's store and travel inside the bundle; a replica
// accepts version watermark+1 (atomically, under its store's write
// lock, so a racing /predict sees old or new but never half), acks
// duplicates after verifying the release's canonical digest
// (internal/core's audit serialization — gob can't serve here because
// it encodes maps in iteration order), and answers out-of-order pushes
// with a 409 carrying its applied-version watermark, from which the
// publisher backfills in order. Late joiners are just the degenerate
// case: watermark 0, backfill everything (Publisher.Sync). Transport
// errors retry with exponential backoff; divergent releases (same
// version, different digest) are permanent errors and never retried —
// a release can be repeated, never replaced. `sagectl replica` runs a
// replica; `sagectl serve -push <urls>` publishes through the tier.
// BENCH_replica.json records push latency and per-replica throughput.
//
// The push path is hardened for deployment across trust boundaries:
// POST /push can be gated behind a shared-secret bearer token (checked
// in constant time; the read API stays open), bodies are gzip-
// compressed by default (Content-Encoding negotiation, a ~100× wire
// reduction on wide released feature tables, with a decompression-size
// cap against zip bombs), and publishers self-heal — a publisher
// constructed with WithSelfHealing reconciles each replica against the
// replica's own reported watermarks before its first push (and eagerly
// via Heal), so a publisher restart or a replica that lost its disk
// converges with no manual Sync.
//
// # Durable platform core
//
// Sage's guarantee is only as strong as the ledger's memory: an
// in-memory AccessControl that dies between granting a Request and the
// release being published loses privacy spend, and a restarted process
// would re-grant budget that was already consumed. internal/wal and
// internal/durable close that hole. wal.Log is a checksummed,
// length-prefixed append-only log: appends are one write(2) plus
// fdatasync, recovery truncates torn or corrupt tails back to the last
// intact record boundary, and atomic snapshot+truncate compaction
// (write temp, sync, rename) keeps recovery time bounded. durable.Open
// threads one log under each stateful layer: core.AccessControl
// journals register/request/refund/retire records and store.Store
// journals every release's canonical bytes — the same bytes the replica
// push digest covers, so the WAL certifies exactly what replicas
// verified.
//
// The crash-consistency rule is journal-before-acknowledge: a request's
// spend record reaches the log after admission checks pass but before
// any budget is deducted or the caller unblocked. A crash can therefore
// leave the recovered ledger with spends that were never acknowledged —
// conservative, wasted budget — but never the reverse; refunds only
// ever follow their request in log order, so recovered per-block loss
// is always at least the budget genuinely consumed. Fault-injection
// tests in internal/durable cut the logs at every record boundary (and
// corrupt every record's checksum in turn) and pin both exact-state
// recovery and the never-under-count invariant.
//
// The write path scales with cores because the paper's block
// composition theorem makes per-block state independent: only the
// global (εg, δg) ceiling is shared. core.AccessControl stripes its
// block map into N shards keyed by core.ShardOf (a Fibonacci hash of
// the block id — a stable on-disk contract, since it decides which WAL
// segment a block's records live in). Each shard has its own mutex and
// journal; the ceiling lives in shared atomic watermarks, reserved
// all-or-nothing before any shard lock is taken and rolled back on
// refusal, so no interleaving of concurrent charges can race past εg.
// Multi-shard operations lock shards in index order and journal one
// sub-record per touched shard; awaiting all segment flushes
// concurrently means a cross-shard op pays the slowest flush, not the
// sum.
//
// Durability amortizes two ways. Per segment, wal.Log group-commits:
// concurrent appenders stage frames into a batch chain, exactly one
// waiter is elected driver (it rides out the predecessor batch, lingers
// while runnable appenders pile on, then seals), and the whole cohort
// is acknowledged by one write(2) + one flush. Across segments,
// wal.SyncGroup replaces per-file fdatasync — which serializes on the
// filesystem journal — with one filesystem-wide syncfs covering every
// cohort member's writes (a member joins only after its write(2)
// returns; the cohort seals before the flush, so coverage is exact).
// Journal-before-acknowledge is preserved bit-for-bit: no appender is
// unblocked before the flush that covers its frame returns, and a
// failed flush poisons the log (and group) rather than acking
// non-durable writes. On platforms without syncfs, durable.Open falls
// back to per-file sync.
//
// Recovery replays segments shard-by-shard in segment-index order;
// no cross-segment ordering is needed because shards share no per-block
// state and the ceiling is recomputed from the merged blocks. The
// segment count is fixed when the directory is created (the on-disk
// layout always wins over the configured shard count — ShardOf(id, N)
// must keep meaning the same file), and a mixed or ambiguous layout
// fails open loudly. A crash may leave segments flushed unevenly; the
// fault-injection tests cut one segment at every boundary while others
// stay whole and require untouched shards to recover byte-exact and the
// cut shard to never under-count acknowledged spend. The contended
// write path is gated by BenchmarkLedgerParallelCharge
// (BENCH_ledger.json): 8 shards + group commit + SyncGroup measure
// ~4-5x over the single-mutex/single-fd baseline on one disk.
//
// # Continuous operation: sagectl daemon
//
// internal/daemon runs the full Fig. 1 loop forever on top of the
// durable core — the platform as the paper operates it, over an
// indefinitely growing database. Each tick: ingest the next
// time-window block (synthetic taxi rides generated per-block from a
// mixed seed, so restarts regenerate identical data), register it and
// charge its share of the DP hour_speed release, run one
// privacy-adaptive training attempt (round-robin across pipelines;
// blocked pipelines wait for fresh blocks, per §3.2's "Sage never runs
// out of budget as long as the database grows"), publish and push
// accepted bundles to the replica tier, retire blocks that fall out of
// the retention window (raw data deleted via the retention hook), and
// periodically compact the WALs. SIGTERM drains gracefully; SIGKILL is
// the tested path: the kill/relaunch e2e in cmd/sagectl kills the real
// binary mid-loop and requires identical ledger remaining-budget, store
// versions, and replica watermarks after relaunch, with replicas
// converging through publisher self-healing alone. GET /daemon/status
// exposes the ledger, store, and replica watermarks; the serving API is
// mounted on the same handler. BENCH_wal.json records the journaling
// overhead (sub-microsecond appends without fsync).
//
// The substrate's hot kernels are tuned for the sweeps' scale: Gram
// accumulation exploits outer-product symmetry (upper triangle +
// one mirror) and one-hot sparsity, Cholesky factorization and solves
// run on contiguous row slices, power iteration reuses its work
// buffers, DP-SGD realizes Poisson sampling with geometric skips
// (O(q·n) draws per step instead of n) and pools its gradient scratch,
// and the SLAed validators stream over losses without copying.
// BENCH_baseline.json and BENCH_optimized.json record the measured
// before/after of `go test -bench=. -benchmem`.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate every table and figure of the paper's
// evaluation at reduced scale; cmd/sage-experiments runs them at full
// scale.
package sage
