// Package sage is a from-scratch Go reproduction of "Privacy Accounting
// and Quality Control in the Sage Differentially Private ML Platform"
// (Lécuyer, Spahn, Vodrahalli, Geambasu, Hsu — SOSP 2019).
//
// Sage enforces one global (εg, δg) differential-privacy guarantee over
// every model and statistic released from a sensitive data stream. The
// two contributions reproduced here are:
//
//   - Block composition (internal/core): privacy-loss accounting at the
//     granularity of stream blocks, so pipelines train on overlapping,
//     adaptively chosen windows while the stream-wide loss stays at the
//     maximum per-block loss — new blocks arrive with fresh budget and
//     the platform never runs out.
//   - Privacy-adaptive training (internal/adaptive) with SLAed
//     validation (internal/validation): retry loops that double data or
//     budget until a statistically rigorous, DP-corrected ACCEPT test
//     passes.
//
// Substrates — DP mechanisms with an RDP accountant (internal/privacy),
// AdaSSP and DP-SGD trainers (internal/ml), DP statistics
// (internal/stats), a TFX-like pipeline framework (internal/pipeline),
// synthetic Taxi/Criteo streams (internal/taxi, internal/criteo), and a
// workload simulator (internal/workload) — are all implemented on the
// Go standard library alone.
//
// See README.md for a tour, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate every table and figure of the paper's
// evaluation at reduced scale; cmd/sage-experiments runs them at full
// scale.
package sage
