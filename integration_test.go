package sage_test

// End-to-end integration tests across the whole platform: stream →
// growing database → access control → privacy-adaptive training →
// SLAed validation → release, with the paper's invariants checked at
// every joint.

import (
	"sync"
	"testing"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/criteo"
	"repro/internal/data"
	"repro/internal/ml"
	"repro/internal/pipeline"
	"repro/internal/privacy"
	"repro/internal/rng"
	"repro/internal/taxi"
	"repro/internal/validation"
)

func lrPipe(target float64) *pipeline.Pipeline {
	return &pipeline.Pipeline{
		Name:    "taxi-lr",
		Trainer: pipeline.AdaSSPTrainer{Rho: 0.1, FeatureBound: 2.5, LabelBound: 1},
		Validator: pipeline.MSEValidator{
			Target: target, B: 1,
			ERMTrainer: pipeline.RidgeTrainer{Lambda: 1e-4},
		},
		Mode: validation.ModeSage,
	}
}

// TestEndToEndEventLevel drives the full Sage loop on a taxi stream
// with event-level (daily) blocks: an accepted model must actually meet
// its target out of sample, and the stream loss must respect the
// ceiling.
func TestEndToEndEventLevel(t *testing.T) {
	stream := taxi.Pipeline(250000, 0, 24*40, 0.02, 0.2, 31)
	holdout := taxi.Pipeline(60000, 0, 24*40, 0, 0, 32)

	db := data.NewGrowingDatabase(data.TimePartitioner{Window: 24})
	ac := core.NewAccessControl(core.Policy{Global: privacy.MustBudget(1, 1e-6)})
	for _, ex := range stream.Examples {
		for _, id := range db.Insert(ex) {
			ac.RegisterBlock(id)
		}
	}

	const target = 0.0095
	st := &adaptive.StreamTrainer{
		AC: ac, DB: db, Pipe: lrPipe(target),
		Epsilon0: 0.125, EpsilonCap: 1.0, Delta: 1e-8, MinWindow: 10,
	}
	res, err := st.Run(rng.New(33))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != validation.Accept {
		t.Fatalf("decision %v (quality %v)", res.Decision, res.Quality)
	}
	model := res.Model.(ml.Model)
	if got := ml.MSE(model, holdout); got > target {
		t.Errorf("accepted model violates target out of sample: %v > %v", got, target)
	}
	if sl := ac.StreamLoss(); sl.Epsilon > 1+1e-9 || sl.Delta > 1e-6 {
		t.Errorf("stream loss %v exceeds ceiling", sl)
	}
}

// TestEndToEndUserLevel runs the same loop with user-keyed blocks
// (§4.4): each user's data lands in one block, and training still works
// because pipelines combine many user blocks.
func TestEndToEndUserLevel(t *testing.T) {
	gen := taxi.NewGenerator(taxi.Config{Users: 200}, 41)
	rides := gen.Generate(120000, 0, 24*30)
	ds := taxi.Featurize(rides, taxi.SpeedByHour(rides, 0, nil))

	db := data.NewGrowingDatabase(data.UserPartitioner{})
	ac := core.NewAccessControl(core.Policy{Global: privacy.MustBudget(1, 1e-6)})
	for _, ex := range ds.Examples {
		for _, id := range db.Insert(ex) {
			ac.RegisterBlock(id)
		}
	}
	if db.NumBlocks() != 200 {
		t.Fatalf("expected 200 user blocks, got %d", db.NumBlocks())
	}
	// §4.4 caveat reproduced: with user-keyed blocks, no fresh blocks
	// arrive unless new users join, so the retry budget cannot be
	// renewed — train in one shot at the full cap over all users.
	st := &adaptive.StreamTrainer{
		AC: ac, DB: db, Pipe: lrPipe(0.011),
		Epsilon0: 1.0, EpsilonCap: 1.0, Delta: 1e-8, MinWindow: 200,
	}
	res, err := st.Run(rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != validation.Accept {
		t.Fatalf("decision %v (quality %v, samples %d)", res.Decision, res.Quality, res.Samples)
	}
	// User-level semantic: retiring a block bounds that *user's* total
	// exposure, and the stream loss is still the max over users.
	if sl := ac.StreamLoss(); sl.Epsilon > 1+1e-9 {
		t.Errorf("stream loss %v exceeds ceiling", sl)
	}
}

// TestConcurrentPipelinesShareStream runs several pipelines against one
// access control concurrently; the per-block ceiling must hold under
// interleaving (the atomicity property of core.Request).
func TestConcurrentPipelinesShareStream(t *testing.T) {
	stream := taxi.Pipeline(150000, 0, 24*30, 0, 0, 51)
	db := data.NewGrowingDatabase(data.TimePartitioner{Window: 24})
	ac := core.NewAccessControl(core.Policy{Global: privacy.MustBudget(1, 1e-6)})
	for _, ex := range stream.Examples {
		for _, id := range db.Insert(ex) {
			ac.RegisterBlock(id)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &adaptive.StreamTrainer{
				AC: ac, DB: db, Pipe: lrPipe(0.0095),
				Epsilon0: 0.125, EpsilonCap: 0.5, Delta: 1e-8, MinWindow: 8,
			}
			_, _ = st.Run(rng.New(uint64(60 + w))) // blocked is fine; leakage is not
		}(w)
	}
	wg.Wait()
	for _, rep := range ac.Report(db.Blocks()) {
		if rep.Loss.Epsilon > 1+1e-9 {
			t.Errorf("block %d loss %v exceeds ceiling under concurrency", rep.ID, rep.Loss)
		}
	}
}

// TestCriteoEndToEnd drives the classification path: DP-SGD + binomial
// SLA, checking the accepted model transfers to a fresh stream sample.
func TestCriteoEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("trains DP-SGD on up to 400K samples")
	}
	stream := criteo.Pipeline(400000, 0, 24*7, 71)
	holdout := criteo.Pipeline(80000, 0, 24*7, 72)
	pipe := &pipeline.Pipeline{
		Name: "criteo-lg",
		Trainer: pipeline.SGDTrainer{
			Kind: pipeline.KindLogistic, Dim: criteo.FeatureDim,
			LearningRate: 0.3, Epochs: 3, BatchSize: 512,
			DP: true, ClipNorm: 1, InitSeed: 73,
		},
		Validator: pipeline.AccuracyValidator{Target: 0.745},
		Mode:      validation.ModeSage,
	}
	search := adaptive.Search{
		Pipe: pipe, Epsilon0: 0.25, EpsilonCap: 1.0,
		Delta: 1e-6, MinSamples: 100000,
	}
	res, err := search.Run(adaptive.SliceSource{Data: stream}, rng.New(74))
	if err != nil {
		t.Fatal(err)
	}
	if res.Decision != validation.Accept {
		t.Fatalf("decision %v (quality %v, samples %d)", res.Decision, res.Quality, res.Samples)
	}
	model := res.Model.(ml.Model)
	if acc := ml.Accuracy(model, holdout); acc < 0.745 {
		t.Errorf("accepted model violates target out of sample: %v", acc)
	}
}

// TestRetiredBlockDataDeletion wires the DP-informed retention policy:
// when a block retires, its raw data is deleted from the growing
// database, and future reads no longer see it.
func TestRetiredBlockDataDeletion(t *testing.T) {
	stream := taxi.Pipeline(30000, 0, 24*10, 0, 0, 81)
	db := data.NewGrowingDatabase(data.TimePartitioner{Window: 24})
	ac := core.NewAccessControl(core.Policy{Global: privacy.MustBudget(1, 1e-6)})
	ac.SetRetireCallback(func(id data.BlockID) { db.Delete(id) })
	for _, ex := range stream.Examples {
		for _, id := range db.Insert(ex) {
			ac.RegisterBlock(id)
		}
	}
	before := db.NumBlocks()
	first := db.Blocks()[0]
	if err := ac.Request([]data.BlockID{first}, privacy.MustBudget(1, 1e-6)); err != nil {
		t.Fatal(err)
	}
	if db.NumBlocks() != before-1 {
		t.Errorf("retired block not deleted: %d blocks, want %d", db.NumBlocks(), before-1)
	}
	if db.BlockSize(first) != 0 {
		t.Error("retired block data still readable")
	}
}
