// Criteo classification: DP-SGD logistic regression on the synthetic
// ad-click stream with Clopper–Pearson SLAed accuracy validation — the
// paper's Criteo LG pipeline (Table 1).
package main

import (
	"fmt"

	"repro/internal/adaptive"
	"repro/internal/criteo"
	"repro/internal/ml"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/validation"
)

func main() {
	const (
		streamSize = 1200000
		accTarget  = 0.75
	)

	// Synthetic Criteo-like impressions: 13 numeric + 26 categorical
	// features, CTR ≈ 25.7% so the majority baseline scores ≈ 74.3%.
	stream := criteo.Pipeline(streamSize, 0, 24*14, 3)
	naive := ml.Accuracy(ml.NaiveMajorityModel(stream), stream)
	fmt.Printf("stream: %d impressions, CTR %.3f, naive accuracy %.4f\n",
		stream.Len(), stream.MeanLabel(), naive)

	// The DP pipeline: DP-SGD logistic regression (per-example clipping
	// + Gaussian noise calibrated by the RDP accountant), validated
	// against the accuracy target with binomial confidence bounds.
	pipe := &pipeline.Pipeline{
		Name: "criteo-lg",
		Trainer: pipeline.SGDTrainer{
			Kind: pipeline.KindLogistic, Dim: criteo.FeatureDim,
			LearningRate: 0.1, Epochs: 3, BatchSize: 512,
			DP: true, ClipNorm: 1, InitSeed: 4,
		},
		Validator: pipeline.AccuracyValidator{Target: accTarget},
		Mode:      validation.ModeSage,
	}

	// Privacy-adaptive training: doubling budget then data until the
	// SLAed validator ACCEPTs.
	search := adaptive.Search{
		Pipe:       pipe,
		Epsilon0:   0.125,
		EpsilonCap: 1.0,
		Delta:      1e-6,
		MinSamples: 100000,
	}
	res, err := search.Run(adaptive.SliceSource{Data: stream}, rng.New(5))
	if err != nil {
		panic(err)
	}
	fmt.Printf("\ndecision: %v after %d iterations\n", res.Decision, res.Iterations)
	fmt.Printf("  samples: %d, final budget %v, total spent %v\n",
		res.Samples, res.FinalBudget, res.TotalSpent)
	fmt.Printf("  DP-estimated accuracy: %.4f (target %.2f)\n", res.Quality, accTarget)
	if res.Decision == validation.Accept {
		model := res.Model.(ml.Model)
		holdout := criteo.Pipeline(100000, 0, 24, 99)
		fmt.Printf("  held-out accuracy: %.4f — the SLA held\n", ml.Accuracy(model, holdout))
	}
}
