// Streaming workload: many pipelines sharing one sensitive stream under
// a global DP guarantee — block retirement, budget contention, the §5.4
// strategy comparison, and the durable platform core surviving a crash.
package main

import (
	"fmt"
	"os"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/durable"
	"repro/internal/pipeline"
	"repro/internal/privacy"
	"repro/internal/rng"
	"repro/internal/taxi"
	"repro/internal/validation"
	"repro/internal/workload"
)

func main() {
	r := rng.New(11)

	// ---- Part 1: several pipelines against one access-controlled stream.
	stream := taxi.Pipeline(400000, 0, 24*60, 0, 0, 8)
	db := data.NewGrowingDatabase(data.TimePartitioner{Window: 24})
	ac := core.NewAccessControl(core.Policy{Global: privacy.MustBudget(1.0, 1e-6)})
	retired := 0
	ac.SetRetireCallback(func(id data.BlockID) { retired++ })
	for _, ex := range stream.Examples {
		for _, id := range db.Insert(ex) {
			ac.RegisterBlock(id)
		}
	}
	fmt.Printf("stream: %d samples, %d daily blocks, policy %v\n",
		db.Size(), db.NumBlocks(), ac.Policy().Global)

	// Three teams push models with different targets; each runs
	// privacy-adaptive training through the shared access control.
	for i, target := range []float64{0.0095, 0.0085, 0.0080} {
		pipe := &pipeline.Pipeline{
			Name:    fmt.Sprintf("taxi-lr-%d", i),
			Trainer: pipeline.AdaSSPTrainer{Rho: 0.1, FeatureBound: 2.5, LabelBound: 1},
			Validator: pipeline.MSEValidator{
				Target: target, B: 1,
				ERMTrainer: pipeline.RidgeTrainer{Lambda: 1e-4},
			},
			Mode: validation.ModeSage,
		}
		st := &adaptive.StreamTrainer{
			AC: ac, DB: db, Pipe: pipe,
			Epsilon0: 0.125, EpsilonCap: 0.5, Delta: 1e-8, MinWindow: 30,
		}
		res, err := st.Run(r)
		if err != nil {
			// Budget contention is expected: a blocked pipeline waits
			// for fresh blocks rather than violating the guarantee.
			fmt.Printf("pipeline %d (target %.4f): blocked — %v\n", i, target, err)
			continue
		}
		fmt.Printf("pipeline %d (target %.4f): %v — %d samples, budget %v\n",
			i, target, res.Decision, res.Samples, res.FinalBudget)
	}
	fmt.Printf("stream loss after 3 pipelines: %v; retired blocks: %d\n\n",
		ac.StreamLoss(), retired)

	// ---- Part 2: the §5.4 strategy comparison (Fig. 8 in miniature).
	fmt.Println("strategy comparison at 0.5 pipelines/hour (16K-point hourly blocks):")
	for _, strat := range []workload.Strategy{
		workload.StreamingComposition,
		workload.QueryComposition,
		workload.BlockAggressive,
		workload.BlockConserve,
	} {
		st := workload.Run(workload.Config{
			Strategy: strat, EpsG: 1.0, BlockSize: 16000,
			ArrivalRate: 0.5, Hours: 800, Seed: 21,
		})
		fmt.Printf("  %-24s release=%6.1fh released=%d/%d ε/model=%.3f\n",
			strat, st.AvgReleaseTime, st.Released, st.Arrived, st.AvgBudgetSpent)
	}

	// ---- Part 3: the durable platform core. The same accounting, but
	// write-ahead-logged: journal every grant, "crash" (abandon the
	// process state without any shutdown), recover from the log, and
	// watch the ledger come back exactly — spend is journaled before it
	// is acknowledged, so a crash can never lose privacy spend.
	fmt.Println("\ndurable ledger across a crash:")
	walDir, err := os.MkdirTemp("", "sage-wal-demo")
	if err != nil {
		fmt.Println("  skipped:", err)
		return
	}
	defer os.RemoveAll(walDir)
	policy := core.Policy{Global: privacy.MustBudget(1.0, 1e-6)}
	plat, _, err := durable.Open(walDir, policy, durable.Options{})
	if err != nil {
		fmt.Println("  skipped:", err)
		return
	}
	for id := data.BlockID(0); id < 4; id++ {
		plat.AC.RegisterBlock(id)
	}
	_ = plat.AC.Request([]data.BlockID{0, 1, 2, 3}, privacy.MustBudget(0.25, 1e-8))
	_ = plat.AC.Refund([]data.BlockID{3}, privacy.MustBudget(0.1, 0))
	fmt.Printf("  before crash: stream loss %v over %d blocks\n",
		plat.AC.StreamLoss(), plat.AC.NumBlocks())
	// Crash: no Close, no compaction — the WAL is all that survives.

	recovered, stats, err := durable.Open(walDir, policy, durable.Options{})
	if err != nil {
		fmt.Println("  recovery failed:", err)
		return
	}
	defer recovered.Close()
	fmt.Printf("  recovered:    stream loss %v over %d blocks (%d journal records replayed)\n",
		recovered.AC.StreamLoss(), recovered.AC.NumBlocks(), stats.Ledger.Records)
	fmt.Printf("  ledger identical: %v — no spend lost, guarantee intact\n",
		recovered.AC.StreamLoss() == plat.AC.StreamLoss())
}
