// Streaming workload: many pipelines sharing one sensitive stream under
// a global DP guarantee — block retirement, budget contention, and the
// §5.4 strategy comparison at a glance.
package main

import (
	"fmt"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/pipeline"
	"repro/internal/privacy"
	"repro/internal/rng"
	"repro/internal/taxi"
	"repro/internal/validation"
	"repro/internal/workload"
)

func main() {
	r := rng.New(11)

	// ---- Part 1: several pipelines against one access-controlled stream.
	stream := taxi.Pipeline(400000, 0, 24*60, 0, 0, 8)
	db := data.NewGrowingDatabase(data.TimePartitioner{Window: 24})
	ac := core.NewAccessControl(core.Policy{Global: privacy.MustBudget(1.0, 1e-6)})
	retired := 0
	ac.SetRetireCallback(func(id data.BlockID) { retired++ })
	for _, ex := range stream.Examples {
		for _, id := range db.Insert(ex) {
			ac.RegisterBlock(id)
		}
	}
	fmt.Printf("stream: %d samples, %d daily blocks, policy %v\n",
		db.Size(), db.NumBlocks(), ac.Policy().Global)

	// Three teams push models with different targets; each runs
	// privacy-adaptive training through the shared access control.
	for i, target := range []float64{0.0095, 0.0085, 0.0080} {
		pipe := &pipeline.Pipeline{
			Name:    fmt.Sprintf("taxi-lr-%d", i),
			Trainer: pipeline.AdaSSPTrainer{Rho: 0.1, FeatureBound: 2.5, LabelBound: 1},
			Validator: pipeline.MSEValidator{
				Target: target, B: 1,
				ERMTrainer: pipeline.RidgeTrainer{Lambda: 1e-4},
			},
			Mode: validation.ModeSage,
		}
		st := &adaptive.StreamTrainer{
			AC: ac, DB: db, Pipe: pipe,
			Epsilon0: 0.125, EpsilonCap: 0.5, Delta: 1e-8, MinWindow: 30,
		}
		res, err := st.Run(r)
		if err != nil {
			// Budget contention is expected: a blocked pipeline waits
			// for fresh blocks rather than violating the guarantee.
			fmt.Printf("pipeline %d (target %.4f): blocked — %v\n", i, target, err)
			continue
		}
		fmt.Printf("pipeline %d (target %.4f): %v — %d samples, budget %v\n",
			i, target, res.Decision, res.Samples, res.FinalBudget)
	}
	fmt.Printf("stream loss after 3 pipelines: %v; retired blocks: %d\n\n",
		ac.StreamLoss(), retired)

	// ---- Part 2: the §5.4 strategy comparison (Fig. 8 in miniature).
	fmt.Println("strategy comparison at 0.5 pipelines/hour (16K-point hourly blocks):")
	for _, strat := range []workload.Strategy{
		workload.StreamingComposition,
		workload.QueryComposition,
		workload.BlockAggressive,
		workload.BlockConserve,
	} {
		st := workload.Run(workload.Config{
			Strategy: strat, EpsG: 1.0, BlockSize: 16000,
			ArrivalRate: 0.5, Hours: 800, Seed: 21,
		})
		fmt.Printf("  %-24s release=%6.1fh released=%d/%d ε/model=%.3f\n",
			strat, st.AvgReleaseTime, st.Released, st.Arrived, st.AvgBudgetSpent)
	}
}
