// Quickstart: enforce a global DP guarantee over a data stream, release
// a DP statistic and a DP-trained model, and watch the per-block privacy
// accounting — Sage's core loop in ~80 lines.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/ml"
	"repro/internal/privacy"
	"repro/internal/rng"
	"repro/internal/stats"
)

func main() {
	r := rng.New(42)

	// A growing database of daily blocks (event-level privacy), guarded
	// by an access-control layer enforcing (εg, δg) = (1.0, 1e-6) per
	// block — and hence, by block composition, over the whole stream.
	db := data.NewGrowingDatabase(data.TimePartitioner{Window: 24})
	ac := core.NewAccessControl(core.Policy{Global: privacy.MustBudget(1.0, 1e-6)})

	// Stream one week of synthetic observations: y = 2·x + noise.
	for hour := int64(0); hour < 7*24; hour++ {
		for i := 0; i < 500; i++ {
			x := r.Float64()
			ex := data.Example{
				Features: []float64{x},
				Label:    2*x + r.Normal(0, 0.05),
				Time:     hour,
			}
			for _, id := range db.Insert(ex) {
				ac.RegisterBlock(id) // new block ⇒ fresh budget
			}
		}
	}
	fmt.Printf("stream: %d examples in %d daily blocks\n", db.Size(), db.NumBlocks())

	// Release a DP statistic over the last 3 days (ε = 0.1).
	window := db.LatestBlocks(3)
	statBudget := privacy.MustBudget(0.1, 0)
	if err := ac.Request(window, statBudget); err != nil {
		panic(err)
	}
	ds := db.Read(window)
	mean := stats.DPMean(ds.Labels(), 0, 2.1, statBudget.Epsilon, r)
	fmt.Printf("DP mean label over last 3 days: %.4f (ε=%.2f)\n", mean.Mean, statBudget.Epsilon)

	// Train a DP linear regression over the whole week (ε = 0.5).
	all := db.Blocks()
	trainBudget := privacy.MustBudget(0.5, 1e-6)
	if err := ac.Request(all, trainBudget); err != nil {
		panic(err)
	}
	model := ml.TrainAdaSSP(db.Read(all), ml.AdaSSPConfig{
		Budget: trainBudget, Rho: 0.1, FeatureBound: 1.5, LabelBound: 2.1,
	}, r)
	fmt.Printf("DP model: y ≈ %.3f·x + %.3f (ε=%.2f, δ=%.0e)\n",
		model.Weights[0], model.Bias, trainBudget.Epsilon, trainBudget.Delta)

	// Inspect the accounting: recent blocks carry both spends, older
	// ones only the training spend; the stream-wide loss is the MAX
	// over blocks (Theorem 4.2), not the sum of queries.
	fmt.Println("\nper-block privacy loss:")
	for _, rep := range ac.Report(all) {
		fmt.Printf("  block %d: spent %v over %d queries (remaining %v)\n",
			rep.ID, rep.Loss, rep.Queries, rep.Remain)
	}
	fmt.Printf("stream-wide privacy loss: %v (ceiling %v)\n",
		ac.StreamLoss(), ac.Policy().Global)
}
