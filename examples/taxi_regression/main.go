// Taxi regression: the paper's Listing 1 pipeline end to end on the
// synthetic NYC-taxi stream — Appendix C cleaning, a DP group-by-mean
// speed feature, AdaSSP linear regression, and SLAed validation driven
// by privacy-adaptive training under block composition.
package main

import (
	"fmt"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/pipeline"
	"repro/internal/privacy"
	"repro/internal/rng"
	"repro/internal/taxi"
	"repro/internal/validation"
)

func main() {
	const (
		streamSize = 400000
		days       = 60
		mseTarget  = 0.0085
	)
	r := rng.New(7)

	// 1. Generate two months of rides with 5% corrupted records, then
	// apply the Appendix C filters.
	gen := taxi.NewGenerator(taxi.Config{OutlierFraction: 0.05}, 1)
	rides := gen.Generate(streamSize, 0, days*24)
	clean, dropped := taxi.Clean(rides)
	fmt.Printf("generated %d rides, dropped %d outliers (Appendix C filters)\n",
		len(rides), dropped)

	// 2. Listing 1's preprocessing: the hour-of-day average speed as a
	// DP aggregate feature (dp_group_by_mean, ε = 0.1).
	speeds := taxi.SpeedByHour(clean, 0.1, r)
	fmt.Printf("DP avg speed: 3am %.1f km/h vs 6pm rush %.1f km/h\n", speeds[3], speeds[18])
	ds := taxi.Featurize(clean, speeds)

	// 3. Load the stream into daily blocks under a (1.0, 1e-6) policy.
	db := data.NewGrowingDatabase(data.TimePartitioner{Window: 24})
	ac := core.NewAccessControl(core.Policy{Global: privacy.MustBudget(1.0, 1e-6)})
	for _, ex := range ds.Examples {
		for _, id := range db.Insert(ex) {
			ac.RegisterBlock(id)
		}
	}
	fmt.Printf("growing database: %d examples in %d daily blocks\n", db.Size(), db.NumBlocks())

	// 4. The (ε, δ)-DP training pipeline: AdaSSP trainer + loss SLAed
	// validator with an ERM-based REJECT test.
	pipe := &pipeline.Pipeline{
		Name:    "taxi-lr",
		Trainer: pipeline.AdaSSPTrainer{Rho: 0.1, FeatureBound: 2.5, LabelBound: 1},
		Validator: pipeline.MSEValidator{
			Target: mseTarget, B: 1,
			ERMTrainer: pipeline.RidgeTrainer{Lambda: 1e-4},
		},
		Mode: validation.ModeSage,
	}

	// 5. Privacy-adaptive training through the Sage Iterator: start
	// small (ε0 = 0.1, 12-day window), double resources on RETRY.
	trainer := &adaptive.StreamTrainer{
		AC: ac, DB: db, Pipe: pipe,
		Epsilon0: 0.1, EpsilonCap: 1.0, Delta: 1e-8,
		MinWindow: 12,
	}
	res, err := trainer.Run(r)
	if err != nil {
		fmt.Println("training did not complete:", err)
		return
	}
	fmt.Printf("\ndecision: %v after %d iterations\n", res.Decision, res.Iterations)
	fmt.Printf("  final window: %d samples over %d blocks\n", res.Samples, len(res.Blocks))
	fmt.Printf("  final budget: %v (total spent %v)\n", res.FinalBudget, res.TotalSpent)
	fmt.Printf("  DP-estimated MSE: %.5f (target %.4f, naive ≈ 0.0075)\n", res.Quality, mseTarget)
	fmt.Printf("stream-wide privacy loss: %v — never exceeds %v\n",
		ac.StreamLoss(), ac.Policy().Global)
}
