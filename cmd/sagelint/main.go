// Command sagelint runs the repo's invariant-enforcing static-analysis
// suite (internal/analysis) over the tree. Every check pins an
// architecture invariant from ROADMAP.md; a finding means a change
// compiles but violates a rule the platform's correctness story rests
// on. See internal/analysis for the analyzer list, the
// //sage:journaled annotation convention, and the //lint:ignore
// suppression syntax.
//
// Usage:
//
//	sagelint ./...             lint the whole tree
//	sagelint -json ./... > r.json   also emit the CI artifact report
//	sagelint -list             show analyzers and their invariants
//	sagelint -run determinism ./internal/experiments/...
package main

import (
	"os"

	"repro/internal/analysis"
)

func main() {
	os.Exit(analysis.CLI(os.Args[1:], os.Stdout, os.Stderr))
}
