// Command sage-experiments regenerates the paper's tables and figures
// (§5) from the reproduction: Table 1 (configurations), Table 2
// (validator violation rates), Fig. 5 (DP impact on quality), Fig. 6
// (SLAed validation sample complexity), Fig. 7 (block vs query
// composition), and Fig. 8 (workload release times).
//
// Usage:
//
//	sage-experiments -exp tab1|tab2|fig5|fig6|fig7|fig8|all [-scale small|full] [-seed N] [-workers N] [-pipeline=false]
//
// The small scale finishes on a laptop in minutes; full mirrors the
// paper's grid sizes (hours of compute). Every experiment grid runs on
// the deterministic parallel engine (internal/parallel): -workers bounds
// the concurrency (default: all cores) and any value produces
// bit-identical output.
//
// With -exp all, the experiments share one process-wide scheduler
// (parallel.SetGlobal) and run concurrently, pipelined across each
// other: the tail of one experiment's grid overlaps the head of the
// next instead of idling at a per-experiment barrier. Each experiment
// writes into its own buffer and the buffers are flushed to stdout in
// the canonical order, so stdout is byte-identical to a sequential run
// (-pipeline=false) for any -workers value. Timing and the DP-SGD
// calibration-cache report go to stderr.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
	"repro/internal/parallel"
	"repro/internal/privacy"
)

// experiment is one runnable unit: it writes its figure/table to w.
type experiment struct {
	name string
	fn   func(w io.Writer)
}

func main() {
	exp := flag.String("exp", "all", "experiment: tab1, tab2, fig5, fig6, fig7, fig8, all")
	scale := flag.String("scale", "small", "small (minutes) or full (hours)")
	seed := flag.Uint64("seed", 1, "base RNG seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"worker goroutines for the experiment scheduler (results identical for any value)")
	pipeline := flag.Bool("pipeline", true,
		"run selected experiments concurrently on one shared scheduler (stdout bytes unchanged)")
	flag.Parse()

	full := *scale == "full"
	if *scale != "full" && *scale != "small" {
		fmt.Fprintln(os.Stderr, "unknown -scale; use small or full")
		os.Exit(2)
	}

	all := []experiment{
		{"tab1", func(w io.Writer) { experiments.PrintTable1(w) }},
		{"fig5", func(w io.Writer) {
			o := experiments.Fig5Options{Seed: *seed, Workers: *workers}
			if !full {
				o.Sizes = []int{10000, 50000, 200000}
				o.Holdout = 50000
			}
			experiments.PrintFig5(w, experiments.Fig5(o))
		}},
		{"fig6", func(w io.Writer) {
			o := experiments.Fig6Options{Seed: *seed, Workers: *workers}
			if !full {
				o.MaxStream = 400000
				o.TargetsPerConfig = 3
			} else {
				o.MaxStream = 2000000
			}
			experiments.PrintFig6(w, experiments.Fig6(o))
		}},
		{"tab2", func(w io.Writer) {
			o := experiments.Tab2Options{Seed: *seed, Workers: *workers}
			if !full {
				o.Runs = 15
				o.Stream = 120000
				o.Holdout = 50000
			} else {
				o.Runs = 100
			}
			experiments.PrintTab2(w, experiments.Tab2(o))
		}},
		{"fig7", func(w io.Writer) {
			o := experiments.Fig7Options{Seed: *seed, Workers: *workers}
			if !full {
				o.Sizes = []int{20000, 80000, 320000}
				o.LRBlockSizes = []int{10000, 50000}
				o.NNBlockSize = 100000
				o.MaxStream = 640000
				o.SkipNN = true
			}
			quality := experiments.Fig7Quality(o)
			accepts := experiments.Fig7Accept(o)
			experiments.PrintFig7(w, quality, accepts)
		}},
		{"fig8", func(w io.Writer) {
			o := experiments.Fig8Options{Seed: *seed, Workers: *workers}
			if !full {
				o.Hours = 800
			} else {
				o.Hours = 3000
			}
			experiments.PrintFig8(w, experiments.Fig8(o))
		}},
	}

	var selected []experiment
	for _, e := range all {
		if *exp == "all" || *exp == e.name {
			selected = append(selected, e)
		}
	}
	if len(selected) == 0 {
		fmt.Fprintf(os.Stderr, "unknown -exp %q\n", *exp)
		os.Exit(2)
	}

	start := time.Now()
	if *pipeline && len(selected) > 1 {
		runPipelined(selected, *scale, *workers)
	} else {
		for _, e := range selected {
			t0 := time.Now()
			fmt.Printf("==== %s (scale=%s) ====\n", e.name, *scale)
			e.fn(os.Stdout)
			fmt.Println()
			fmt.Fprintf(os.Stderr, "---- %s done in %v ----\n", e.name, time.Since(t0).Round(time.Millisecond))
		}
	}
	fmt.Fprintf(os.Stderr, "total wall-clock %v\n", time.Since(start).Round(time.Millisecond))
	if st := privacy.SGDCalibrationStats(); st.Hits+st.Misses > 0 {
		fmt.Fprintf(os.Stderr, "DP-SGD calibration cache: %d hits / %d misses (hit rate %.1f%%)\n",
			st.Hits, st.Misses, 100*st.HitRate())
	}
}

// runPipelined executes the experiments concurrently on one shared
// bounded scheduler and flushes their buffered output in canonical
// order. Every experiment's cells carry coordinate-derived seeds, so the
// interleaving cannot change a single byte of the output.
func runPipelined(selected []experiment, scale string, workers int) {
	pool := parallel.NewPool(workers)
	parallel.SetGlobal(pool)
	defer func() {
		parallel.SetGlobal(nil)
		pool.Close()
	}()

	bufs := make([]bytes.Buffer, len(selected))
	elapsed := make([]time.Duration, len(selected))
	done := make([]chan struct{}, len(selected))
	for i, e := range selected {
		done[i] = make(chan struct{})
		go func(i int, e experiment) {
			defer close(done[i])
			t0 := time.Now()
			e.fn(&bufs[i])
			elapsed[i] = time.Since(t0)
		}(i, e)
	}
	for i, e := range selected {
		<-done[i]
		fmt.Printf("==== %s (scale=%s) ====\n", e.name, scale)
		io.Copy(os.Stdout, &bufs[i])
		fmt.Println()
		fmt.Fprintf(os.Stderr, "---- %s done in %v (pipelined) ----\n", e.name, elapsed[i].Round(time.Millisecond))
	}
}
