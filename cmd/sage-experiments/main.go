// Command sage-experiments regenerates the paper's tables and figures
// (§5) from the reproduction: Table 1 (configurations), Table 2
// (validator violation rates), Fig. 5 (DP impact on quality), Fig. 6
// (SLAed validation sample complexity), Fig. 7 (block vs query
// composition), and Fig. 8 (workload release times).
//
// Usage:
//
//	sage-experiments -exp tab1|tab2|fig5|fig6|fig7|fig8|all [-scale small|full] [-seed N] [-workers N]
//
// The small scale finishes on a laptop in minutes; full mirrors the
// paper's grid sizes (hours of compute). Every experiment grid runs on
// the deterministic parallel engine (internal/parallel): -workers bounds
// the concurrency (default: all cores) and any value produces
// bit-identical output.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment: tab1, tab2, fig5, fig6, fig7, fig8, all")
	scale := flag.String("scale", "small", "small (minutes) or full (hours)")
	seed := flag.Uint64("seed", 1, "base RNG seed")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"worker goroutines per experiment grid (results identical for any value)")
	flag.Parse()

	full := *scale == "full"
	if *scale != "full" && *scale != "small" {
		fmt.Fprintln(os.Stderr, "unknown -scale; use small or full")
		os.Exit(2)
	}

	run := func(name string, fn func()) {
		if *exp != "all" && *exp != name {
			return
		}
		start := time.Now()
		fmt.Printf("==== %s (scale=%s) ====\n", name, *scale)
		fn()
		fmt.Printf("---- %s done in %v ----\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("tab1", func() { experiments.PrintTable1(os.Stdout) })

	run("fig5", func() {
		o := experiments.Fig5Options{Seed: *seed, Workers: *workers}
		if !full {
			o.Sizes = []int{10000, 50000, 200000}
			o.Holdout = 50000
		}
		experiments.PrintFig5(os.Stdout, experiments.Fig5(o))
	})

	run("fig6", func() {
		o := experiments.Fig6Options{Seed: *seed, Workers: *workers}
		if !full {
			o.MaxStream = 400000
			o.TargetsPerConfig = 3
		} else {
			o.MaxStream = 2000000
		}
		experiments.PrintFig6(os.Stdout, experiments.Fig6(o))
	})

	run("tab2", func() {
		o := experiments.Tab2Options{Seed: *seed, Workers: *workers}
		if !full {
			o.Runs = 15
			o.Stream = 120000
			o.Holdout = 50000
		} else {
			o.Runs = 100
		}
		experiments.PrintTab2(os.Stdout, experiments.Tab2(o))
	})

	run("fig7", func() {
		o := experiments.Fig7Options{Seed: *seed, Workers: *workers}
		if !full {
			o.Sizes = []int{20000, 80000, 320000}
			o.LRBlockSizes = []int{10000, 50000}
			o.NNBlockSize = 100000
			o.MaxStream = 640000
			o.SkipNN = true
		}
		quality := experiments.Fig7Quality(o)
		accepts := experiments.Fig7Accept(o)
		experiments.PrintFig7(os.Stdout, quality, accepts)
	})

	run("fig8", func() {
		o := experiments.Fig8Options{Seed: *seed, Workers: *workers}
		if !full {
			o.Hours = 800
		} else {
			o.Hours = 3000
		}
		experiments.PrintFig8(os.Stdout, experiments.Fig8(o))
	})
}
