// Command benchcheck is the CI bench-regression gate: it parses raw
// `go test -bench` output and compares each benchmark's ns/op against
// the committed baseline JSONs (BENCH_serving.json, BENCH_optimized.json,
// BENCH_replica.json), failing when any benchmark is slower than the
// allowed ratio. The tolerance is deliberately loose (default 3×):
// shared CI runners are noisy, and the gate exists to catch "someone
// quadratically regressed the batch path", not 20% jitter.
//
// Usage:
//
//	go test -run '^$' -bench 'ServePredictBatch|Fig7' -benchtime 3x ./... | tee bench.txt
//	go run ./cmd/benchcheck -bench bench.txt -max-ratio 3 BENCH_serving.json BENCH_optimized.json
//
// Benchmarks present in the bench output but absent from every baseline
// (or vice versa) are reported and skipped; only intersecting names
// gate. Exit status: 0 ok, 1 regression, 2 usage/parse error.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one line of go test -bench output, e.g.
//
//	BenchmarkServePredictBatch/linear/rows=256-8   362   3200506 ns/op   74.10 MB/s
//
// The -8 GOMAXPROCS suffix is optional (absent on 1-core runners).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+(?:e[+-]?\d+)?) ns/op`)

// parseBenchOutput returns benchmark name (sans "Benchmark" prefix and
// cpu suffix) → ns/op. Repeated names (e.g. -count>1) keep the minimum:
// the best observed run is the fairest statement of current cost.
func parseBenchOutput(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name := strings.TrimPrefix(m[1], "Benchmark")
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if prev, ok := out[name]; !ok || ns < prev {
			out[name] = ns
		}
	}
	return out, sc.Err()
}

// parseBaseline extracts benchmark → ns_per_op from one committed
// BENCH_*.json. The repo's baselines have grown two shapes — an object
// keyed by benchmark name ({"benchmarks": {"BenchmarkX": {"ns_per_op": n}}})
// and a result list ({"results": [{"benchmark": "X", "ns_per_op": n}]}) —
// so the walk is structural: any JSON object carrying a numeric
// "ns_per_op" contributes, named by its "benchmark" field or its key.
func parseBaseline(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc any
	if err := json.Unmarshal(raw, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := make(map[string]float64)
	walk(doc, "", out)
	return out, nil
}

func walk(node any, key string, out map[string]float64) {
	switch v := node.(type) {
	case map[string]any:
		ns, hasNs := v["ns_per_op"].(float64)
		if hasNs {
			name := key
			if bn, ok := v["benchmark"].(string); ok {
				name = bn
			}
			if name != "" {
				out[strings.TrimPrefix(name, "Benchmark")] = ns
			}
			return
		}
		for k, child := range v {
			walk(child, k, out)
		}
	case []any:
		for _, child := range v {
			walk(child, "", out)
		}
	}
}

// check compares current results against the merged baselines, writing
// the per-benchmark table to w. It returns the exit status main should
// use: 0 ok, 1 regression, 2 when nothing intersected (name drift must
// fail closed — a gate that silently compares nothing gates nothing).
func check(w io.Writer, current, baseline map[string]float64, baselineOf map[string]string, maxRatio float64) int {
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)
	regressed, compared := 0, 0
	for _, name := range names {
		base, ok := baseline[name]
		if !ok || base <= 0 {
			fmt.Fprintf(w, "%-10s %-48s no baseline\n", "SKIP", name)
			continue
		}
		compared++
		ratio := current[name] / base
		status := "ok"
		if ratio > maxRatio {
			status = "REGRESSION"
			regressed++
		}
		fmt.Fprintf(w, "%-10s %-48s %12.0f ns/op vs %12.0f baseline (%s)  ratio %.2f\n",
			status, name, current[name], base, baselineOf[name], ratio)
	}
	switch {
	case compared == 0:
		fmt.Fprintln(w, "benchcheck: no benchmark intersected a baseline — name drift? failing closed")
		return 2
	case regressed > 0:
		fmt.Fprintf(w, "benchcheck: %d of %d benchmark(s) regressed beyond %.1fx\n", regressed, compared, maxRatio)
		return 1
	default:
		fmt.Fprintf(w, "benchcheck: %d benchmark(s) within %.1fx of baseline\n", compared, maxRatio)
		return 0
	}
}

func main() {
	benchPath := flag.String("bench", "", "raw `go test -bench` output to check")
	maxRatio := flag.Float64("max-ratio", 3, "fail when current ns/op exceeds baseline by more than this factor")
	flag.Parse()
	if *benchPath == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: benchcheck -bench bench.txt [-max-ratio 3] BASELINE.json...")
		os.Exit(2)
	}

	current, err := parseBenchOutput(*benchPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcheck:", err)
		os.Exit(2)
	}
	if len(current) == 0 {
		fmt.Fprintf(os.Stderr, "benchcheck: no benchmark results in %s\n", *benchPath)
		os.Exit(2)
	}
	baseline := make(map[string]float64)
	baselineOf := make(map[string]string)
	for _, path := range flag.Args() {
		b, err := parseBaseline(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchcheck:", err)
			os.Exit(2)
		}
		for name, ns := range b {
			baseline[name] = ns
			baselineOf[name] = path
		}
	}
	os.Exit(check(os.Stdout, current, baseline, baselineOf, *maxRatio))
}
