package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func write(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchOutput(t *testing.T) {
	path := write(t, "bench.txt", `goos: linux
goarch: amd64
BenchmarkServePredictBatch/linear/rows=256-8   362   3200506 ns/op   74.10 MB/s
BenchmarkFig7BlockVsQuery 	       3	 199724361 ns/op
BenchmarkFig7BlockVsQuery 	       3	 180000000 ns/op
PASS
`)
	got, err := parseBenchOutput(path)
	if err != nil {
		t.Fatal(err)
	}
	if got["ServePredictBatch/linear/rows=256"] != 3200506 {
		t.Errorf("batch ns/op = %v", got["ServePredictBatch/linear/rows=256"])
	}
	// Repeated runs keep the fastest.
	if got["Fig7BlockVsQuery"] != 180000000 {
		t.Errorf("repeated bench kept %v, want the minimum", got["Fig7BlockVsQuery"])
	}
	if len(got) != 2 {
		t.Errorf("parsed %d benchmarks, want 2: %v", len(got), got)
	}
}

func TestParseBaselineBothShapes(t *testing.T) {
	// The "results" list shape (BENCH_serving.json).
	list := write(t, "list.json", `{
	  "results": [
	    {"benchmark": "ServePredictBatch/linear/rows=256", "ns_per_op": 3251999, "rows_per_s": 78721}
	  ]}`)
	// The name-keyed object shape (BENCH_optimized.json).
	keyed := write(t, "keyed.json", `{
	  "benchmarks": {
	    "BenchmarkFig7BlockVsQuery": {"ns_per_op": 185515269, "speedup_vs_baseline": 4.68}
	  }}`)
	for path, want := range map[string]struct {
		name string
		ns   float64
	}{
		list:  {"ServePredictBatch/linear/rows=256", 3251999},
		keyed: {"Fig7BlockVsQuery", 185515269},
	} {
		got, err := parseBaseline(path)
		if err != nil {
			t.Fatal(err)
		}
		if got[want.name] != want.ns {
			t.Errorf("%s: %q = %v, want %v (parsed: %v)", path, want.name, got[want.name], want.ns, got)
		}
	}
}

func TestCheckGate(t *testing.T) {
	baseline := map[string]float64{"X": 1_000_000, "Y": 900}
	of := map[string]string{"X": "b.json", "Y": "b.json"}
	for _, tc := range []struct {
		name     string
		current  map[string]float64
		wantExit int
	}{
		{"within tolerance", map[string]float64{"X": 2_900_000, "Y": 1_000}, 0},
		{"regression", map[string]float64{"X": 10_000_000, "Y": 1_000}, 1},
		{"improvement", map[string]float64{"X": 100_000}, 0},
		{"no intersection fails closed", map[string]float64{"Z": 5}, 2},
	} {
		var buf strings.Builder
		if got := check(&buf, tc.current, baseline, of, 3); got != tc.wantExit {
			t.Errorf("%s: exit %d, want %d\n%s", tc.name, got, tc.wantExit, buf.String())
		}
	}
}
