package main

import (
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/replica"
)

// scrapeMetrics fetches url's /metrics, strict-parses the exposition,
// and archives the raw payload under the artifact dir (CI uploads it;
// locally it lands in the test's temp dir).
func scrapeMetrics(t *testing.T, url, artifact string) metrics.Families {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s/metrics: HTTP %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("GET %s/metrics Content-Type %q, want the 0.0.4 text exposition", url, ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	dir := os.Getenv("SAGE_METRICS_ARTIFACT_DIR")
	if dir == "" {
		dir = t.TempDir()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, artifact), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	fams, err := metrics.Parse(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatalf("GET %s/metrics is not valid exposition: %v\npayload:\n%s", url, err, raw)
	}
	return fams
}

// mustValue reads one sample or fails with the family listing.
func mustValue(t *testing.T, fams metrics.Families, name string, labels map[string]string) float64 {
	t.Helper()
	v, ok := fams.Value(name, labels)
	if !ok {
		var have []string
		for n := range fams {
			have = append(have, n)
		}
		t.Fatalf("metric %s%v missing; families present: %s", name, labels, strings.Join(have, ", "))
	}
	return v
}

// TestDaemonMetricsE2E is the observability acceptance test: run the
// real sagectl daemon binary against live replicas, kill and relaunch
// it, and require that GET /metrics on both the daemon and a replica
// (1) is valid Prometheus text exposition under the in-repo strict
// parser, and (2) agrees exactly with the JSON status endpoints —
// ledger ε spend, store versions, applied-version watermarks, push lag.
func TestDaemonMetricsE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a child binary; skipped in -short")
	}
	bin := buildSagectl(t)
	walDir := filepath.Join(t.TempDir(), "wal")

	tok := "metrics-secret"
	rep := replica.NewServer(replica.WithAuthToken(tok))
	srv := httptest.NewServer(rep.Handler())
	defer srv.Close()

	// Phase 1: make progress (publishes, pushes, ticks), then kill hard
	// so the relaunch exercises the recovery path the metrics report on.
	d1 := startDaemon(t, bin, walDir,
		"-tick", "30ms", "-push", srv.URL, "-push-token", tok)
	deadline := time.Now().Add(120 * time.Second)
	for {
		st, err := d1.status(t)
		if err == nil && st.Published >= 2 && st.Ticks >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon made no progress before deadline; output:\n%s", d1.out.dump())
		}
		time.Sleep(20 * time.Millisecond)
	}
	// A live scrape must already be valid and in step with the loop.
	live := scrapeMetrics(t, "http://"+d1.addr, "daemon-live.prom")
	if v := mustValue(t, live, "sage_daemon_ticks", nil); v < 5 {
		t.Fatalf("sage_daemon_ticks = %v on a daemon that reported >=5 ticks", v)
	}
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = d1.cmd.Process.Wait()

	// Phase 2: relaunch frozen (1h tick): everything scraped below is
	// pure recovered state, directly comparable to /daemon/status.
	d2 := startDaemon(t, bin, walDir,
		"-tick", "1h", "-push", srv.URL, "-push-token", tok)
	st, err := d2.status(t)
	if err != nil {
		t.Fatal(err)
	}
	fams := scrapeMetrics(t, "http://"+d2.addr, "daemon-recovered.prom")

	if got := mustValue(t, fams, "sage_daemon_ledger_eps_spent", nil); got != st.StreamLossEps {
		t.Fatalf("sage_daemon_ledger_eps_spent = %v, /daemon/status stream_loss_eps = %v", got, st.StreamLossEps)
	}
	if spent, rem := mustValue(t, fams, "sage_daemon_ledger_eps_spent", nil),
		mustValue(t, fams, "sage_daemon_ledger_eps_remaining", nil); rem != 0 && math.Abs(spent+rem-1.0) > 1e-9 {
		t.Fatalf("spent %v + remaining %v != global ε 1.0", spent, rem)
	}
	// Per-shard spend: the stream-wide loss is the max over blocks
	// (Theorem 4.2), so the max over the 3 shard gauges must equal it.
	shardMax := 0.0
	for _, k := range []string{"0", "1", "2"} {
		v := mustValue(t, fams, "sage_daemon_ledger_shard_eps_spent", map[string]string{"shard": k})
		shardMax = max(shardMax, v)
	}
	if shardMax != st.StreamLossEps {
		t.Fatalf("max shard eps spent %v, stream loss %v", shardMax, st.StreamLossEps)
	}

	wantVersions := 0
	for _, n := range st.StoreVersions {
		wantVersions += n
	}
	if got := mustValue(t, fams, "sage_daemon_store_versions", nil); got != float64(wantVersions) {
		t.Fatalf("sage_daemon_store_versions = %v, /daemon/status sums to %d", got, wantVersions)
	}
	if got := mustValue(t, fams, "sage_daemon_retired_blocks", nil); got != float64(st.RetiredBlocks) {
		t.Fatalf("sage_daemon_retired_blocks = %v, /daemon/status says %d", got, st.RetiredBlocks)
	}
	// Startup self-healing converged the replica, so its lag gauge and
	// the watermark the replica itself reports must both line up.
	if got := mustValue(t, fams, "sage_daemon_replica_lag_versions", map[string]string{"endpoint": srv.URL}); got != 0 {
		t.Fatalf("sage_daemon_replica_lag_versions = %v after startup heal", got)
	}
	// The recovered WAL's record counts flow through the wal-tier
	// families registered by durable.Open.
	if got := mustValue(t, fams, "sage_wal_records", map[string]string{"log": "store.wal"}); got < float64(len(st.StoreVersions)) {
		t.Fatalf("sage_wal_records{log=store.wal} = %v with %d released names", got, len(st.StoreVersions))
	}

	// Replica scrape: the applied-version sum must equal what
	// /replica/status reports — both are views over the same store.
	rfams := scrapeMetrics(t, srv.URL, "replica.prom")
	wm := fetchWatermarks(t, srv.URL)
	sum := 0
	for _, n := range wm {
		sum += n
	}
	if got := mustValue(t, rfams, "sage_replica_applied_versions_total", nil); got != float64(sum) {
		t.Fatalf("sage_replica_applied_versions_total = %v, /replica/status sums to %d", got, sum)
	}
	if got := mustValue(t, rfams, "sage_replica_models", nil); got != float64(len(wm)) {
		t.Fatalf("sage_replica_models = %v, /replica/status lists %d", got, len(wm))
	}
	applied := mustValue(t, rfams, "sage_replica_pushes_total", map[string]string{"outcome": "applied"})
	if applied < float64(sum) {
		t.Fatalf("sage_replica_pushes_total{outcome=applied} = %v < %d applied versions", applied, sum)
	}
}
