// Command sagectl demonstrates Sage's control plane end to end: it
// builds a synthetic taxi stream, runs DP pipelines against it under a
// global (εg, δg) policy, and either prints the per-block privacy
// ledger (what an operator would inspect in production) or publishes
// the accepted models into the wide-access store and serves them over
// HTTP — the full Fig. 1 loop from growing database to serving
// infrastructure.
//
// Usage:
//
//	sagectl [ledger] [-epsg 1.0] [-delta 1e-6] [-days 30] [-pipelines 3] [-user-blocks]
//	sagectl serve [-addr :8080] [-feature-eps 0.1] [-push http://r1:8081,http://r2:8081] [-push-token T] [ledger flags]
//	sagectl replica [-addr :8081] [-push-token T]
//	sagectl daemon [-wal ./sage-wal] [-addr :8080] [-tick 1s] [-ledger-shards N] [-retention N] [-push ...] [-push-token T]
//	sagectl wal [-wal ./sage-wal] [-v]
//	sagectl gateway [-addr :8090] [-backends http://r1:8081,http://r2:8081] [-from http://daemon:8080] [-attempt-timeout 10s]
//	sagectl trace -from http://host:port [-id <32-hex trace id>]
//
// In serve mode, accepted pipelines are published as bundles — model,
// the DP per-hour speed table (Listing 1's aggregate feature), and
// provenance — and the store's HTTP API comes up on -addr:
//
//	GET  /models                           list released models
//	GET  /models/{name}/provenance         blocks, budget, decision (audit)
//	POST /predict?model=<name>             single prediction
//	POST /predict/batch?model=<name>       batched predictions
//	GET  /features?model=<name>&key=hour_speed[&index=H]   serving-time join
//	GET  /metrics                          Prometheus text exposition
//
// Every sagectl server — serve, replica, daemon, gateway — exposes GET
// /metrics in the Prometheus text format (internal/metrics): request
// latency histograms, push/shed/breaker counters, ledger ε gauges, and
// WAL fsync-stall histograms, named per the sage_<tier>_<name>_<unit>
// convention documented in internal/metrics.
//
// With -push, every accepted bundle is additionally pushed to the given
// replica endpoints (versioned idempotent push with retry/backoff, gap
// backfill, gzip bodies, and optional -push-token bearer auth; see
// internal/replica). Replicas are started with `sagectl replica`: they
// serve the identical read API plus
//
//	POST /push              receive one encoded bundle (publisher-only)
//	GET  /replica/status    applied-version watermarks per model
//
// Gateway mode (internal/gateway) fronts a replica fleet with one
// fault-tolerant endpoint: health-checked least-loaded routing with
// automatic failover, per-replica circuit breakers, watermark-lag
// draining, and admission control that sheds expensive batch work first
// under overload. Replica membership comes from -backends, from a
// running daemon's /daemon/status (-from), or both.
//
// Daemon mode is the platform as the paper operates it: a continuous
// loop (internal/daemon) that ingests stream blocks, trains when budget
// allows, publishes, pushes to replicas, and retires blocks by
// retention — with every ledger and store mutation write-ahead-logged
// under -wal. With -ledger-shards N the privacy ledger is striped
// across N WAL segments so concurrent charges commit in parallel (the
// layout is fixed when the directory is created; reopening always uses
// what is on disk). Kill it at any instant and relaunch with the same
// -wal directory: it resumes at the same block/version watermarks, and
// the replica tier self-heals. SIGTERM/SIGINT drain gracefully (finish the
// iteration, final replica sync, compact, close). Besides the serving
// API, daemon mode exposes GET /daemon/status (ledger, store, and
// replica watermarks as JSON).
//
// The wal subcommand inspects a durable directory offline (daemon
// stopped): it lists every log file — ledger segments in shard order,
// then the store log — with record counts, byte sizes, and torn-tail
// status; -v additionally prints each record's offset, length, type,
// and CRC verdict. It never writes.
//
// Every server mode additionally takes -debug, which turns on the
// observability surface (internal/trace): requests get W3C traceparent
// spans with tail-sampled capture of slow/error/failover traces, GET
// /debug/trace exports them (plus latency-histogram exemplars) as
// JSON, and the net/http/pprof endpoints come up under /debug/pprof/.
// The trace subcommand pretty-prints a -debug server's export as
// indented trace trees. A CPU profile of a live server is one line:
//
//	go tool pprof "http://localhost:8080/debug/pprof/profile?seconds=10"
//
// Without -debug none of this is reachable and the serving fast paths
// are byte-identical to the untraced build (pinned by alloc tests).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/data"
	"repro/internal/durable"
	"repro/internal/gateway"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/privacy"
	"repro/internal/replica"
	"repro/internal/rng"
	"repro/internal/store"
	"repro/internal/taxi"
	"repro/internal/trace"
	"repro/internal/validation"
	"repro/internal/wal"
)

// options carries the flags shared by the subcommands.
type options struct {
	epsG       float64
	delta      float64
	days       int
	nPipelines int
	userBlocks bool
	// serve/replica/daemon.
	addr       string
	featureEps float64
	push       string
	pushToken  string
	// daemon-only.
	walDir       string
	tick         time.Duration
	rowsPerBlock int
	retention    int
	maxTicks     int
	compactEvery int
	compactBytes int64
	ledgerShards int
	sla          string
	seed         uint64
	eps0         float64
	epsCap       float64
	noSync       bool
	drain        time.Duration
	// debug enables the observability surface on any server mode:
	// request tracing (GET /debug/trace) and the net/http/pprof
	// endpoints (GET /debug/pprof/...).
	debug bool
	// trace-only.
	traceID string
	// wal-only.
	walVerbose bool
	// gateway-only.
	backends        string
	from            string
	attemptTimeout  time.Duration
	healthInterval  time.Duration
	lagVersions     int
	breakerFails    int
	breakerCooldown time.Duration
}

func main() {
	args := os.Args[1:]
	mode := "ledger"
	if len(args) > 0 {
		switch args[0] {
		case "ledger", "serve", "replica", "daemon", "gateway", "wal", "trace":
			mode = args[0]
			args = args[1:]
		}
	}

	fs := flag.NewFlagSet("sagectl "+mode, flag.ExitOnError)
	var opt options
	fs.Float64Var(&opt.epsG, "epsg", 1.0, "global per-block ε ceiling")
	fs.Float64Var(&opt.delta, "delta", 1e-6, "global per-block δ ceiling")
	fs.IntVar(&opt.days, "days", 30, "days of stream to generate")
	fs.IntVar(&opt.nPipelines, "pipelines", 3, "number of pipelines to run")
	fs.BoolVar(&opt.userBlocks, "user-blocks", false, "partition blocks by user ID (user-level privacy, §4.4) instead of by day")
	switch mode {
	case "serve":
		fs.StringVar(&opt.addr, "addr", ":8080", "HTTP listen address for the serving API")
		fs.BoolVar(&opt.debug, "debug", false, "serve GET /debug/trace and the /debug/pprof endpoints")
		fs.Float64Var(&opt.featureEps, "feature-eps", 0.2, "ε spent releasing the per-hour speed aggregate (Listing 1)")
		fs.StringVar(&opt.push, "push", "", "comma-separated replica base URLs to push accepted bundles to")
		fs.StringVar(&opt.pushToken, "push-token", "", "bearer token sent with every push (replicas started with the same -push-token)")
	case "replica":
		fs.StringVar(&opt.addr, "addr", ":8081", "HTTP listen address for this replica")
		fs.BoolVar(&opt.debug, "debug", false, "serve GET /debug/trace and the /debug/pprof endpoints")
		fs.StringVar(&opt.pushToken, "push-token", "", "require this bearer token on POST /push (empty = open)")
	case "daemon":
		fs.StringVar(&opt.addr, "addr", ":8080", "HTTP listen address (serving API + /daemon/status)")
		fs.BoolVar(&opt.debug, "debug", false, "serve GET /debug/trace and the /debug/pprof endpoints")
		fs.StringVar(&opt.walDir, "wal", "./sage-wal", "write-ahead-log directory (all durable state; reuse it to resume)")
		fs.DurationVar(&opt.tick, "tick", time.Second, "loop period: one stream block + one training attempt per tick")
		fs.IntVar(&opt.rowsPerBlock, "rows-per-block", 4000, "synthetic stream rate (rides per block)")
		fs.Float64Var(&opt.featureEps, "feature-eps", 0.05, "ε charged per block for the hour_speed aggregate release")
		fs.IntVar(&opt.retention, "retention", 0, "keep only the newest N blocks; older ones are retired and their raw data deleted (0 = no age-based retirement)")
		fs.IntVar(&opt.maxTicks, "max-ticks", 0, "stop after N ticks (0 = run until SIGTERM)")
		fs.IntVar(&opt.compactEvery, "compact-every", 64, "compact the WALs every N ticks")
		fs.Int64Var(&opt.compactBytes, "compact-bytes", 0, "also compact any WAL that grows past this many bytes, checked every tick (0 = tick cadence only)")
		fs.IntVar(&opt.ledgerShards, "ledger-shards", 1, "stripe the privacy ledger across N WAL segments for concurrent charge throughput (fixed at directory creation; an existing -wal dir's layout wins)")
		fs.StringVar(&opt.sla, "sla", "", "comma-separated per-pipeline MSE targets (default paper-scale serve targets)")
		fs.Uint64Var(&opt.seed, "seed", 17, "stream/training seed (per-block data derives from it, so restarts regenerate identical blocks)")
		fs.Float64Var(&opt.eps0, "eps0", 0, "adaptive search starting ε (default εg/8)")
		fs.Float64Var(&opt.epsCap, "eps-cap", 0, "adaptive search per-attempt ε cap (default εg/2)")
		fs.StringVar(&opt.push, "push", "", "comma-separated replica base URLs to push accepted bundles to")
		fs.StringVar(&opt.pushToken, "push-token", "", "bearer token sent with every push")
		fs.BoolVar(&opt.noSync, "no-sync", false, "disable per-append fsync (tests only: crash durability drops to what the OS flushed)")
		fs.DurationVar(&opt.drain, "drain", 30*time.Second, "bound on the final replica sync during graceful shutdown (0 = unbounded)")
	case "trace":
		fs.StringVar(&opt.from, "from", "", "base URL of a sagectl server running with -debug (required)")
		fs.StringVar(&opt.traceID, "id", "", "show only the trace with this 32-hex-digit id")
	case "wal":
		fs.StringVar(&opt.walDir, "wal", "./sage-wal", "write-ahead-log directory to inspect")
		fs.BoolVar(&opt.walVerbose, "v", false, "list every record (offset, length, type, CRC) instead of per-log summaries")
	case "gateway":
		fs.StringVar(&opt.addr, "addr", ":8090", "HTTP listen address for the gateway")
		fs.BoolVar(&opt.debug, "debug", false, "serve GET /debug/trace and the /debug/pprof endpoints")
		fs.StringVar(&opt.backends, "backends", "", "comma-separated replica base URLs to route over")
		fs.StringVar(&opt.from, "from", "", "daemon base URL to bootstrap replica membership from (GET /daemon/status)")
		fs.DurationVar(&opt.attemptTimeout, "attempt-timeout", 10*time.Second, "deadline for one proxied attempt (a failed-over request pays at most two)")
		fs.DurationVar(&opt.healthInterval, "health-interval", 2*time.Second, "active health-probe period")
		fs.IntVar(&opt.lagVersions, "lag-versions", 2, "drain a replica whose applied watermark trails the fleet by more than this many versions")
		fs.IntVar(&opt.breakerFails, "breaker-failures", 5, "consecutive failures that open a replica's circuit breaker")
		fs.DurationVar(&opt.breakerCooldown, "breaker-cooldown", 5*time.Second, "open-breaker cooldown before a half-open probe")
	}
	_ = fs.Parse(args)

	// Replicas and gateways never train: they have no budget, no stream,
	// no pipelines — replicas serve what the publisher pushes into them,
	// gateways route over replicas.
	switch mode {
	case "wal":
		if err := runWalInspect(opt); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	case "trace":
		if err := runTrace(opt); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	case "replica":
		if err := runReplica(opt); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	case "gateway":
		if err := runGateway(opt); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	budget, err := privacy.NewBudget(opt.epsG, opt.delta)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	switch mode {
	case "serve":
		err = runServe(opt, budget)
	case "daemon":
		err = runDaemon(opt, budget)
	default:
		err = runLedger(opt, budget)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// parseTargets parses the -sla list.
func parseTargets(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("sagectl: bad -sla entry %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// runDaemon runs the continuous platform loop until SIGTERM/SIGINT
// (graceful drain) or -max-ticks.
func runDaemon(opt options, budget privacy.Budget) error {
	targets, err := parseTargets(opt.sla)
	if err != nil {
		return err
	}
	cfg := daemon.Config{
		Dir:           opt.walDir,
		Global:        budget,
		Tick:          opt.tick,
		RowsPerBlock:  opt.rowsPerBlock,
		Pipelines:     opt.nPipelines,
		SLATargets:    targets,
		FeatureEps:    opt.featureEps,
		Epsilon0:      opt.eps0,
		EpsilonCap:    opt.epsCap,
		Retention:     opt.retention,
		Seed:          opt.seed,
		MaxTicks:      opt.maxTicks,
		CompactEvery:  opt.compactEvery,
		CompactBytes:  opt.compactBytes,
		LedgerShards:  opt.ledgerShards,
		NoSync:        opt.noSync,
		DrainTimeout:  opt.drain,
		PushEndpoints: splitEndpoints(opt.push),
		PushToken:     opt.pushToken,
		Tracer:        newTracer(opt.debug, "daemon"),
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	}
	d, stats, err := daemon.New(cfg)
	if err != nil {
		return err
	}
	if stats.Ledger.Records > 0 || stats.Store.Records > 0 {
		fmt.Printf("daemon: recovered WAL (%d ledger records, %d store records", stats.Ledger.Records, stats.Store.Records)
		if stats.Ledger.Truncated || stats.Store.Truncated {
			fmt.Printf("; torn tail truncated: %dB ledger, %dB store",
				stats.Ledger.TornBytes, stats.Store.TornBytes)
		}
		fmt.Println(")")
	}

	lis, err := net.Listen("tcp", opt.addr)
	if err != nil {
		d.Close()
		return err
	}
	// The e2e harness parses this line to find the bound port.
	fmt.Printf("daemon: serving on %s (wal %s)\n", lis.Addr(), opt.walDir)
	srv := newHTTPServer("", withDebug(d.Handler(), opt.debug))
	go func() { _ = srv.Serve(lis) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	runErr := d.Run(ctx)

	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = srv.Shutdown(shutdownCtx)
	if runErr == nil {
		fmt.Println("daemon: drained cleanly")
	}
	return runErr
}

// runWalInspect prints what recovery would see in a durable directory:
// each log file's record count, intact/total bytes, and whether the
// tail is torn (and so would be truncated on the next open). With -v it
// lists every frame. Read-only — safe on a live daemon's directory, but
// the snapshot may be mid-append.
func runWalInspect(opt options) error {
	files, err := durable.LogFiles(opt.walDir)
	if err != nil {
		return fmt.Errorf("sagectl wal: %w", err)
	}
	if len(files) == 0 {
		return fmt.Errorf("sagectl wal: no log files in %s", opt.walDir)
	}
	torn := 0
	for _, path := range files {
		rep, err := wal.Inspect(path)
		if err != nil {
			return fmt.Errorf("sagectl wal: %w", err)
		}
		status := "clean"
		if rep.Torn() {
			torn++
			status = fmt.Sprintf("TORN tail: %d byte(s) after offset %d would be truncated",
				rep.TotalBytes-rep.GoodBytes, rep.GoodBytes)
		}
		intact := len(rep.Records)
		if intact > 0 && !rep.Records[intact-1].CRCOK {
			intact--
		}
		fmt.Printf("%s: %d record(s), %d/%d bytes intact, %s\n",
			filepath.Base(path), intact, rep.GoodBytes, rep.TotalBytes, status)
		if !opt.walVerbose {
			continue
		}
		for _, r := range rep.Records {
			crc := "ok"
			if !r.CRCOK {
				crc = "BAD"
			}
			fmt.Printf("  offset %10d  len %8d  type %3d  crc %s\n", r.Offset, r.Length, r.Type, crc)
		}
	}
	if torn > 0 {
		fmt.Printf("%d of %d log(s) carry tail damage; the journaled prefix is intact and recovery truncates the rest\n", torn, len(files))
	}
	return nil
}

// runTrace fetches GET /debug/trace from a sagectl server started with
// -debug and pretty-prints the captured and recent spans as indented
// trace trees. With -id it asks the server for that one trace.
func runTrace(opt options) error {
	if opt.from == "" {
		return fmt.Errorf("sagectl trace: -from http://host:port is required (a server started with -debug)")
	}
	url := strings.TrimSuffix(opt.from, "/") + "/debug/trace"
	if opt.traceID != "" {
		url += "?trace=" + opt.traceID
	}
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return fmt.Errorf("sagectl trace: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("sagectl trace: GET %s: HTTP %d (is the server running with -debug?)", url, resp.StatusCode)
	}
	var snap trace.Snapshot
	if err := json.NewDecoder(io.LimitReader(resp.Body, 32<<20)).Decode(&snap); err != nil {
		return fmt.Errorf("sagectl trace: decoding %s: %w", url, err)
	}
	fmt.Printf("service %s: %d span(s) recorded, %d trace(s) captured\n",
		snap.Service, snap.SpansRecorded, snap.Captures)
	printTraceSection("captured", snap.Captured)
	printTraceSection("recent", snap.Recent)
	return nil
}

// printTraceSection groups one exported span list by trace id and
// prints each trace as a tree: children indented under parents, both in
// start order. A span whose parent is outside the export (a remote
// parent, or one already overwritten in the ring) prints as a root.
func printTraceSection(label string, spans []trace.SpanJSON) {
	if len(spans) == 0 {
		return
	}
	fmt.Printf("\n%s:\n", label)
	var order []string
	byTrace := make(map[string][]trace.SpanJSON)
	for _, sp := range spans {
		if _, ok := byTrace[sp.TraceID]; !ok {
			order = append(order, sp.TraceID)
		}
		byTrace[sp.TraceID] = append(byTrace[sp.TraceID], sp)
	}
	for _, id := range order {
		fmt.Printf("trace %s\n", id)
		group := byTrace[id]
		local := make(map[string]bool, len(group))
		for _, sp := range group {
			local[sp.SpanID] = true
		}
		children := make(map[string][]trace.SpanJSON)
		var roots []trace.SpanJSON
		for _, sp := range group {
			if sp.ParentID != "" && local[sp.ParentID] {
				children[sp.ParentID] = append(children[sp.ParentID], sp)
			} else {
				roots = append(roots, sp)
			}
		}
		sortSpansByStart(roots)
		for _, r := range roots {
			printSpanTree(r, children, 1)
		}
	}
}

func sortSpansByStart(spans []trace.SpanJSON) {
	sort.SliceStable(spans, func(i, j int) bool { return spans[i].Start.Before(spans[j].Start) })
}

func printSpanTree(sp trace.SpanJSON, children map[string][]trace.SpanJSON, depth int) {
	var tail strings.Builder
	if sp.Status != 0 {
		fmt.Fprintf(&tail, " status=%d", sp.Status)
	}
	if sp.Outcome != "" {
		fmt.Fprintf(&tail, " outcome=%s", sp.Outcome)
	}
	for _, a := range sp.Attrs {
		fmt.Fprintf(&tail, " %s=%s", a.Key, a.Value)
	}
	for _, e := range sp.Events {
		fmt.Fprintf(&tail, " event:%s+%dus", e.Name, e.OffsetUS)
	}
	fmt.Printf("%s%s [%s] %.3fms%s\n",
		strings.Repeat("  ", depth), sp.Name, sp.Service, float64(sp.DurationUS)/1000, tail.String())
	kids := children[sp.SpanID]
	sortSpansByStart(kids)
	for _, k := range kids {
		printSpanTree(k, children, depth+1)
	}
}

// newHTTPServer wraps a handler in an http.Server hardened against slow
// or stuck clients: a connection that trickles its headers, never sends
// its body, or never reads its response is bounded instead of pinning a
// goroutine and its buffers forever. Every sagectl listener goes
// through here (the gateway additionally bounds each *upstream* attempt
// with its own deadline).
func newHTTPServer(addr string, h http.Handler) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       time.Minute,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
}

// newTracer builds a per-tier tracer, or nil when -debug is off. A nil
// tracer is the compiled-in-but-disabled state: every method is a
// nil-check no-op and Middleware returns its handler unchanged, so the
// serving fast paths keep their pinned allocation budgets.
func newTracer(debug bool, service string) *trace.Tracer {
	if !debug {
		return nil
	}
	return trace.New(trace.Config{Service: service})
}

// withDebug mounts the net/http/pprof endpoints in front of a server's
// handler when -debug is set. Explicit routes (not the blank import)
// because every sagectl listener runs its own mux, never
// http.DefaultServeMux.
func withDebug(h http.Handler, debug bool) http.Handler {
	if !debug {
		return h
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/", h)
	return mux
}

// runGateway fronts a replica fleet with the fault-tolerant routing
// tier. Membership is the union of -backends and, with -from, the
// replica endpoints a running daemon reports in /daemon/status.
func runGateway(opt options) error {
	backends := splitEndpoints(opt.backends)
	if opt.from != "" {
		discovered, err := fetchMembership(opt.from)
		if err != nil {
			return fmt.Errorf("sagectl: discovering replicas from %s: %w", opt.from, err)
		}
		fmt.Printf("gateway: discovered %d replica(s) from %s\n", len(discovered), opt.from)
		backends = append(backends, discovered...)
	}
	seen := make(map[string]bool, len(backends))
	uniq := backends[:0]
	for _, b := range backends {
		if b != "" && !seen[b] {
			seen[b] = true
			uniq = append(uniq, b)
		}
	}
	g, err := gateway.New(gateway.Config{
		Backends:       uniq,
		AttemptTimeout: opt.attemptTimeout,
		HealthInterval: opt.healthInterval,
		LagVersions:    opt.lagVersions,
		Breaker: gateway.BreakerConfig{
			FailThreshold: opt.breakerFails,
			Cooldown:      opt.breakerCooldown,
		},
		Tracer: newTracer(opt.debug, "gateway"),
		Logf: func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		},
	})
	if err != nil {
		return err
	}
	g.Start()
	defer g.Stop()

	base := opt.addr
	if strings.HasPrefix(base, ":") {
		base = "localhost" + base
	}
	fmt.Printf("gateway on %s over %d replica(s): %s\n", opt.addr, len(uniq), strings.Join(uniq, ", "))
	fmt.Printf("  curl %s/gateway/status\n", base)
	fmt.Printf("  curl %s/models\n", base)
	return newHTTPServer(opt.addr, withDebug(g.Handler(), opt.debug)).ListenAndServe()
}

// fetchMembership reads the replica endpoints a daemon is pushing to.
func fetchMembership(daemonURL string) ([]string, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(strings.TrimSuffix(daemonURL, "/") + "/daemon/status")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("daemon status: HTTP %d", resp.StatusCode)
	}
	var st struct {
		Replicas map[string]map[string]int `json:"replicas"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&st); err != nil {
		return nil, err
	}
	eps := make([]string, 0, len(st.Replicas))
	for ep := range st.Replicas {
		eps = append(eps, ep)
	}
	sort.Strings(eps)
	return eps, nil
}

// splitEndpoints parses the -push list.
func splitEndpoints(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// ledgerTargets are deliberately aggressive MSE targets: the ledger
// demo wants to show retries draining block budgets and DP retention
// kicking in. serveTargets are the SLAs this stream's pipelines can
// actually validate, so serve mode has accepted bundles to publish.
var (
	ledgerTargets = []float64{0.0095, 0.0088, 0.0082, 0.0078, 0.0075}
	serveTargets  = []float64{0.013, 0.015, 0.014, 0.016, 0.0135}
)

// demoPipeline builds the i-th taxi regression pipeline of the demo.
func demoPipeline(i int, targets []float64) *pipeline.Pipeline {
	return &pipeline.Pipeline{
		Name:    fmt.Sprintf("taxi-lr-%d", i),
		Trainer: pipeline.AdaSSPTrainer{Rho: 0.1, FeatureBound: 2.5, LabelBound: 1},
		Validator: pipeline.MSEValidator{
			Target: targets[i%len(targets)], B: 1,
			ERMTrainer: pipeline.RidgeTrainer{Lambda: 1e-4},
		},
		Mode: validation.ModeSage,
	}
}

// newControlPlane builds the demo's database and access control.
func newControlPlane(opt options, budget privacy.Budget) (*data.GrowingDatabase, *core.AccessControl) {
	var part data.Partitioner = data.TimePartitioner{Window: 24}
	if opt.userBlocks {
		part = data.UserPartitioner{}
	}
	db := data.NewGrowingDatabase(part)
	ac := core.NewAccessControl(core.Policy{Global: budget})
	return db, ac
}

// ledgerState renders a block report's state column.
func ledgerState(rep core.BlockReport) string {
	if !rep.Retired {
		return "active"
	}
	return fmt.Sprintf("RETIRED (%s)", rep.Reason)
}

// printLedger dumps the per-block accounting table.
func printLedger(ac *core.AccessControl, db *data.GrowingDatabase, budget privacy.Budget) {
	fmt.Println("\nblock ledger:")
	fmt.Printf("%-8s %-28s %-28s %-8s %s\n", "block", "loss", "remaining", "queries", "state")
	for _, rep := range ac.Report(db.Blocks()) {
		fmt.Printf("%-8d %-28v %-28v %-8d %s\n", rep.ID, rep.Loss, rep.Remain, rep.Queries, ledgerState(rep))
	}
	fmt.Printf("\nstream-wide privacy loss (max over blocks): %v — guarantee %v holds\n",
		ac.StreamLoss(), budget)
}

// runLedger is the original sagectl demo: pipelines + ledger dump.
func runLedger(opt options, budget privacy.Budget) error {
	db, ac := newControlPlane(opt, budget)
	ac.SetRetireCallback(func(id data.BlockID) {
		fmt.Printf("! block %d retired — DP-informed retention deletes its raw data\n", id)
	})

	stream := taxi.Pipeline(opt.days*8000, 0, int64(opt.days)*24, 0, 0, 17)
	for _, ex := range stream.Examples {
		for _, id := range db.Insert(ex) {
			ac.RegisterBlock(id)
		}
	}
	fmt.Printf("stream: %d samples in %d blocks (partitioner %s), policy %v\n\n",
		db.Size(), db.NumBlocks(), db.Partitioner().Name(), budget)

	r := rng.New(3)
	for i := 0; i < opt.nPipelines; i++ {
		pipe := demoPipeline(i, ledgerTargets)
		st := &adaptive.StreamTrainer{
			AC: ac, DB: db, Pipe: pipe,
			Epsilon0: budget.Epsilon / 8, EpsilonCap: budget.Epsilon,
			Delta: opt.delta / 100, MinWindow: min(6, db.NumBlocks()),
		}
		res, err := st.Run(r)
		if err != nil {
			fmt.Printf("pipeline %d (%s): blocked — %v\n", i, pipe.Name, err)
			continue
		}
		fmt.Printf("pipeline %d (%s): %v in %d iterations, %d samples, spent %v\n",
			i, pipe.Name, res.Decision, res.Iterations, res.Samples, res.TotalSpent)
	}

	printLedger(ac, db, budget)
	return nil
}

// runReplica serves one member of the replicated tier: an empty local
// store that fills up as a publisher pushes bundles, answering the same
// read API as serve mode.
func runReplica(opt options) error {
	base := opt.addr
	if strings.HasPrefix(base, ":") {
		base = "localhost" + base
	}
	fmt.Printf("replica on %s — push bundles with `sagectl serve -push http://%s`, inspect with:\n", opt.addr, base)
	fmt.Printf("  curl %s/replica/status\n", base)
	fmt.Printf("  curl %s/models\n", base)
	var sopts []replica.ServerOption
	if opt.pushToken != "" {
		fmt.Println("  (POST /push requires the shared bearer token)")
		sopts = append(sopts, replica.WithAuthToken(opt.pushToken))
	}
	if t := newTracer(opt.debug, "replica"); t != nil {
		sopts = append(sopts, replica.WithTracer(t))
	}
	return newHTTPServer(opt.addr, withDebug(replica.NewServer(sopts...).Handler(), opt.debug)).ListenAndServe()
}

// runServe publishes accepted pipelines into the model & feature store
// and serves them: the complete Fig. 1 loop.
func runServe(opt options, budget privacy.Budget) error {
	db, ac := newControlPlane(opt, budget)
	ac.SetRetireCallback(func(id data.BlockID) {
		fmt.Printf("! block %d retired — DP-informed retention deletes its raw data\n", id)
	})

	// Preprocessing (Listing 1): generate the raw stream, compute the DP
	// per-hour speed aggregate, and featurize with it.
	gen := taxi.NewGenerator(taxi.Config{}, 17)
	rides := gen.Generate(opt.days*8000, 0, int64(opt.days)*24)
	clean, _ := taxi.Clean(rides)
	var speeds []float64
	if opt.featureEps > 0 {
		speeds = taxi.SpeedByHour(clean, opt.featureEps, rng.New(19))
	} else {
		speeds = taxi.SpeedByHour(clean, 0, nil)
	}
	for _, ex := range taxi.Featurize(clean, speeds).Examples {
		for _, id := range db.Insert(ex) {
			ac.RegisterBlock(id)
		}
	}
	fmt.Printf("stream: %d samples in %d blocks (partitioner %s), policy %v\n",
		db.Size(), db.NumBlocks(), db.Partitioner().Name(), budget)

	// The aggregate is itself a release: account its ε against every
	// block it read before anything else trains.
	if opt.featureEps > 0 {
		featureBudget := privacy.Budget{Epsilon: opt.featureEps}
		if err := ac.Request(db.Blocks(), featureBudget); err != nil {
			return fmt.Errorf("sagectl: charging feature release: %w", err)
		}
		fmt.Printf("released hour_speed aggregate (24 groups) for %v across %d blocks\n\n",
			featureBudget, db.NumBlocks())
	} else {
		fmt.Printf("released hour_speed aggregate without DP (-feature-eps 0)\n\n")
	}

	st := store.New()
	// With -push, accepted bundles also fan out to the replica tier as
	// they publish (versioned idempotent push; stragglers and late
	// joiners are reconciled by the final Sync).
	var pub *replica.Publisher
	if opt.push != "" {
		endpoints := splitEndpoints(opt.push)
		popts := []replica.Option{replica.WithSelfHealing()}
		if opt.pushToken != "" {
			popts = append(popts, replica.WithAuth(opt.pushToken))
		}
		pub = replica.NewPublisher(st, endpoints, popts...)
		fmt.Printf("pushing accepted bundles to %d replica(s): %s\n", len(endpoints), strings.Join(endpoints, ", "))
	}
	r := rng.New(3)
	published := 0
	for i := 0; i < opt.nPipelines; i++ {
		pipe := demoPipeline(i, serveTargets)
		// A 10-block window (~80K samples at the demo rate) is what the
		// paper-scale targets need to validate; smaller windows retry
		// their way through the whole stream's budget without accepting.
		trainer := &adaptive.StreamTrainer{
			AC: ac, DB: db, Pipe: pipe,
			Epsilon0: budget.Epsilon / 8, EpsilonCap: budget.Epsilon,
			Delta: opt.delta / 100, MinWindow: min(10, db.NumBlocks()),
		}
		res, err := trainer.Run(r)
		if err != nil {
			fmt.Printf("pipeline %d (%s): blocked — %v\n", i, pipe.Name, err)
			continue
		}
		fmt.Printf("pipeline %d (%s): %v in %d iterations, %d samples, spent %v\n",
			i, pipe.Name, res.Decision, res.Iterations, res.Samples, res.TotalSpent)
		if res.Decision != validation.Accept {
			continue
		}
		spec, err := store.Serialize(res.Model)
		if err != nil {
			fmt.Printf("pipeline %d (%s): cannot serialize model: %v\n", i, pipe.Name, err)
			continue
		}
		bundle := store.Bundle{
			Name:  pipe.Name,
			Model: spec,
			// The bundle ships its serving-time join table (§2.1): the
			// same released aggregate preprocessing trained against.
			Features: map[string][]float64{"hour_speed": speeds},
			Provenance: store.Provenance{
				Pipeline: pipe.Name,
				Spent:    res.TotalSpent,
				Blocks:   res.Blocks,
				Decision: res.Decision.String(),
				Quality:  res.Quality,
			},
		}
		var version int
		if pub != nil {
			var pushErr error
			version, pushErr = pub.Publish(bundle)
			if pushErr != nil {
				// The release is durable locally; replicas reconverge on
				// the Sync below or the next run.
				fmt.Printf("  ! push %s@v%d: %v\n", pipe.Name, version, pushErr)
			}
		} else {
			version = st.Publish(bundle)
		}
		published++
		fmt.Printf("  → published %s@v%d (%d blocks, quality %.4g)\n",
			pipe.Name, version, len(res.Blocks), res.Quality)
	}

	printLedger(ac, db, budget)
	if published == 0 {
		return fmt.Errorf("sagectl: no pipeline was accepted; nothing to serve")
	}
	if pub != nil {
		if err := pub.Sync(); err != nil {
			fmt.Printf("! replica sync: %v\n", err)
		}
		for _, ep := range pub.Endpoints() {
			for _, name := range st.List() {
				fmt.Printf("replica %s: %s at v%d\n", ep, name, pub.Watermark(ep, name))
			}
		}
	}

	// A bare ":8080" listen address needs a host for the curl hints.
	base := opt.addr
	if strings.HasPrefix(base, ":") {
		base = "localhost" + base
	}
	fmt.Printf("\nserving %d model(s) on %s — try:\n", published, opt.addr)
	fmt.Printf("  curl %s/models\n", base)
	fmt.Printf("  curl %s/models/taxi-lr-0/provenance\n", base)
	fmt.Printf("  curl %s/features'?model=taxi-lr-0&key=hour_speed&index=8'\n", base)
	fmt.Printf("  curl -X POST %s/predict/batch'?model=taxi-lr-0' -d '{\"rows\":[[...48 features...]]}'\n", base)
	srv := store.NewServer(st)
	reg := metrics.New()
	srv.Instrument(reg)
	tracer := newTracer(opt.debug, "store")
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.TextExpose(w)
	})
	if tracer != nil {
		mux.Handle("GET /debug/trace", tracer.DebugHandler(func() any { return reg.Exemplars() }))
	}
	mux.Handle("/", srv.Handler())
	return newHTTPServer(opt.addr, withDebug(tracer.Middleware(mux), opt.debug)).ListenAndServe()
}
