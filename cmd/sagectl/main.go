// Command sagectl demonstrates Sage's access-control plane: it builds a
// synthetic taxi stream, runs a few DP pipelines against it under a
// global (εg, δg) policy, and prints the per-block privacy ledger —
// what an operator would inspect in production.
//
// Usage:
//
//	sagectl [-epsg 1.0] [-delta 1e-6] [-days 30] [-pipelines 3] [-user-blocks]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/adaptive"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/pipeline"
	"repro/internal/privacy"
	"repro/internal/rng"
	"repro/internal/taxi"
	"repro/internal/validation"
)

func main() {
	epsG := flag.Float64("epsg", 1.0, "global per-block ε ceiling")
	delta := flag.Float64("delta", 1e-6, "global per-block δ ceiling")
	days := flag.Int("days", 30, "days of stream to generate")
	nPipelines := flag.Int("pipelines", 3, "number of pipelines to run")
	userBlocks := flag.Bool("user-blocks", false, "partition blocks by user ID (user-level privacy, §4.4) instead of by day")
	flag.Parse()

	budget, err := privacy.NewBudget(*epsG, *delta)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var part data.Partitioner = data.TimePartitioner{Window: 24}
	if *userBlocks {
		part = data.UserPartitioner{}
	}
	db := data.NewGrowingDatabase(part)
	ac := core.NewAccessControl(core.Policy{Global: budget})
	ac.SetRetireCallback(func(id data.BlockID) {
		fmt.Printf("! block %d retired (budget exhausted) — DP-informed retention would delete it\n", id)
	})

	stream := taxi.Pipeline((*days)*8000, 0, int64(*days)*24, 0, 0, 17)
	for _, ex := range stream.Examples {
		for _, id := range db.Insert(ex) {
			ac.RegisterBlock(id)
		}
	}
	fmt.Printf("stream: %d samples in %d blocks (partitioner %s), policy %v\n\n",
		db.Size(), db.NumBlocks(), part.Name(), budget)

	r := rng.New(3)
	targets := []float64{0.0095, 0.0088, 0.0082, 0.0078, 0.0075}
	for i := 0; i < *nPipelines; i++ {
		target := targets[i%len(targets)]
		pipe := &pipeline.Pipeline{
			Name:    fmt.Sprintf("taxi-lr-%d", i),
			Trainer: pipeline.AdaSSPTrainer{Rho: 0.1, FeatureBound: 2.5, LabelBound: 1},
			Validator: pipeline.MSEValidator{
				Target: target, B: 1,
				ERMTrainer: pipeline.RidgeTrainer{Lambda: 1e-4},
			},
			Mode: validation.ModeSage,
		}
		st := &adaptive.StreamTrainer{
			AC: ac, DB: db, Pipe: pipe,
			Epsilon0: budget.Epsilon / 8, EpsilonCap: budget.Epsilon,
			Delta: *delta / 100, MinWindow: min(6, db.NumBlocks()),
		}
		res, err := st.Run(r)
		if err != nil {
			fmt.Printf("pipeline %d (target %.4g): blocked — %v\n", i, target, err)
			continue
		}
		fmt.Printf("pipeline %d (target %.4g): %v in %d iterations, %d samples, spent %v\n",
			i, target, res.Decision, res.Iterations, res.Samples, res.TotalSpent)
	}

	fmt.Println("\nblock ledger:")
	fmt.Printf("%-8s %-28s %-28s %-8s %s\n", "block", "loss", "remaining", "queries", "state")
	for _, rep := range ac.Report(db.Blocks()) {
		state := "active"
		if rep.Retired {
			state = "RETIRED"
		}
		fmt.Printf("%-8d %-28v %-28v %-8d %s\n", rep.ID, rep.Loss, rep.Remain, rep.Queries, state)
	}
	fmt.Printf("\nstream-wide privacy loss (max over blocks): %v — guarantee %v holds\n",
		ac.StreamLoss(), budget)
}
