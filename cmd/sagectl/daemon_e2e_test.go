package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/durable"
	"repro/internal/privacy"
	"repro/internal/replica"
)

// buildSagectl compiles the sagectl binary (with -race when this test
// binary has it) and returns its path.
func buildSagectl(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "sagectl")
	args := []string{"build"}
	if raceEnabled {
		args = append(args, "-race")
	}
	args = append(args, "-o", bin, ".")
	cmd := exec.Command("go", args...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("building sagectl: %v\n%s", err, out)
	}
	return bin
}

// daemonProc is one launched sagectl daemon child process.
type daemonProc struct {
	cmd  *exec.Cmd
	addr string
	out  *lineBuffer
}

// lineBuffer captures child output while letting the test wait for
// specific lines.
type lineBuffer struct {
	mu    sync.Mutex
	lines []string
}

func (b *lineBuffer) add(line string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lines = append(b.lines, line)
}

func (b *lineBuffer) contains(substr string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, l := range b.lines {
		if strings.Contains(l, substr) {
			return true
		}
	}
	return false
}

func (b *lineBuffer) dump() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return strings.Join(b.lines, "\n")
}

// startDaemon launches the daemon and waits for its listen line.
func startDaemon(t *testing.T, bin, walDir string, extra ...string) *daemonProc {
	t.Helper()
	args := append([]string{
		"daemon",
		"-wal", walDir,
		"-addr", "127.0.0.1:0",
		"-rows-per-block", "6000",
		"-pipelines", "2",
		"-sla", "0.04,0.042",
		"-eps0", "0.5",
		"-eps-cap", "0.5",
		"-compact-every", "5",
		"-ledger-shards", "3",
	}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout // interleave; the child writes mostly stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &daemonProc{cmd: cmd, out: &lineBuffer{}}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			p.out.add(line)
			if strings.HasPrefix(line, "daemon: serving on ") {
				fields := strings.Fields(strings.TrimPrefix(line, "daemon: serving on "))
				select {
				case addrCh <- fields[0]:
				default:
				}
			}
		}
	}()
	select {
	case p.addr = <-addrCh:
	case <-time.After(60 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("daemon never announced its address; output:\n%s", p.out.dump())
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			_ = cmd.Process.Kill()
			_, _ = cmd.Process.Wait()
		}
	})
	return p
}

// status fetches /daemon/status.
func (p *daemonProc) status(t *testing.T) (daemon.Status, error) {
	t.Helper()
	resp, err := http.Get("http://" + p.addr + "/daemon/status")
	if err != nil {
		return daemon.Status{}, err
	}
	defer resp.Body.Close()
	var st daemon.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return daemon.Status{}, err
	}
	return st, nil
}

// durableView is the cross-crash invariant: the exact ledger and store
// state the WAL certifies.
type durableView struct {
	Blocks    []daemon.BlockStatus
	LossEps   float64
	LossDelta float64
	Versions  map[string]int
}

func viewFromStatus(st daemon.Status) durableView {
	return durableView{
		Blocks:    st.Blocks,
		LossEps:   st.StreamLossEps,
		LossDelta: st.StreamLossDelta,
		Versions:  st.StoreVersions,
	}
}

// TestDaemonKillRestart is the durability acceptance test: run the real
// sagectl daemon binary against live (auth-gated) replicas, SIGKILL it
// mid-loop, verify the WAL's recovered state in-process, relaunch the
// daemon on the same WAL, and require (1) the relaunched daemon reports
// exactly the recovered ledger/store state, (2) the replica tier
// converges to the recovered store with no manual intervention, and
// (3) a SIGTERM drains the relaunched daemon cleanly.
func TestDaemonKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a child binary; skipped in -short")
	}
	bin := buildSagectl(t)
	walDir := filepath.Join(t.TempDir(), "wal")

	tok := "e2e-secret"
	repA := replica.NewServer(replica.WithAuthToken(tok))
	srvA := httptest.NewServer(repA.Handler())
	defer srvA.Close()
	repB := replica.NewServer(replica.WithAuthToken(tok))
	srvB := httptest.NewServer(repB.Handler())
	defer srvB.Close()
	pushList := srvA.URL + "," + srvB.URL

	// Phase 1: run until it has published and is deep enough in the
	// loop that a kill lands mid-flight state, then SIGKILL — no drain,
	// no final sync, no compaction.
	d1 := startDaemon(t, bin, walDir,
		"-tick", "30ms", "-push", pushList, "-push-token", tok)
	deadline := time.Now().Add(120 * time.Second)
	for {
		st, err := d1.status(t)
		if err == nil && st.Published >= 2 && st.Ticks >= 5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon made no progress before deadline; output:\n%s", d1.out.dump())
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = d1.cmd.Process.Wait()

	// The offline inspector must read the post-kill directory (possibly
	// with a torn tail) without error and see the sharded layout.
	insp, err := exec.Command(bin, "wal", "-wal", walDir, "-v").CombinedOutput()
	if err != nil {
		t.Fatalf("sagectl wal after kill: %v\n%s", err, insp)
	}
	for _, f := range []string{"ledger-0-of-3.wal", "ledger-1-of-3.wal", "ledger-2-of-3.wal", "store.wal"} {
		if !strings.Contains(string(insp), f) {
			t.Fatalf("sagectl wal output missing %s:\n%s", f, insp)
		}
	}

	// Phase 2: open the WAL in-process. This is the ground truth the
	// relaunched daemon must reproduce. (Opening also truncates any
	// torn tail the kill produced — exactly what the daemon will see.)
	plat, stats, err := durable.Open(walDir, core.Policy{Global: privacy.MustBudget(1.0, 1e-6)}, durable.Options{})
	if err != nil {
		t.Fatalf("recovering WAL after kill: %v", err)
	}
	if stats.Ledger.Records == 0 {
		t.Fatal("killed daemon left an empty ledger WAL")
	}
	want := durableView{
		Blocks:   daemon.LedgerStatus(plat.AC),
		Versions: plat.Store.Watermarks(),
	}
	loss := plat.AC.StreamLoss()
	want.LossEps, want.LossDelta = loss.Epsilon, loss.Delta
	if len(want.Versions) == 0 {
		t.Fatal("killed daemon left no releases in the store WAL")
	}
	if err := plat.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 3: relaunch on the same WAL with a tick so long the loop
	// cannot run before we inspect it: the status it serves is pure
	// recovered state. Startup self-healing must converge the replicas
	// (one of which may have missed the last pre-kill push) without any
	// Sync call.
	d2 := startDaemon(t, bin, walDir,
		"-tick", "1h", "-push", pushList, "-push-token", tok)
	st2, err := d2.status(t)
	if err != nil {
		t.Fatal(err)
	}
	got := viewFromStatus(st2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("relaunched daemon state differs from WAL ground truth:\n got %+v\nwant %+v", got, want)
	}
	if st2.Ticks != 0 {
		t.Fatalf("relaunched daemon already ran %d ticks", st2.Ticks)
	}
	// NextBlock must resume exactly past the highest recovered block.
	if len(st2.Blocks) > 0 {
		if high := st2.Blocks[len(st2.Blocks)-1].ID; st2.NextBlock != high+1 {
			t.Fatalf("stream position %d, want %d", st2.NextBlock, high+1)
		}
	}

	// Replica convergence: both replicas report exactly the recovered
	// store's watermarks.
	for name, url := range map[string]string{"A": srvA.URL, "B": srvB.URL} {
		wm := fetchWatermarks(t, url)
		if !reflect.DeepEqual(wm, want.Versions) {
			t.Fatalf("replica %s watermarks %v, want %v", name, wm, want.Versions)
		}
	}

	// The relaunched daemon keeps serving the recovered models.
	resp, err := http.Get("http://" + d2.addr + "/models")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(raw), "taxi-lr-") {
		t.Fatalf("recovered daemon /models: %d %s", resp.StatusCode, raw)
	}

	// Phase 4: graceful drain. SIGTERM must exit 0 through the drain
	// path (final replica sync, compaction, WAL close).
	if err := d2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d2.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("SIGTERM exit: %v; output:\n%s", err, d2.out.dump())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("daemon did not drain on SIGTERM; output:\n%s", d2.out.dump())
	}
	if !d2.out.contains("drained cleanly") {
		t.Fatalf("drain message missing; output:\n%s", d2.out.dump())
	}

	// The drain compacted the WALs; a final in-process open must still
	// see the identical state.
	plat2, _, err := durable.Open(walDir, core.Policy{Global: privacy.MustBudget(1.0, 1e-6)}, durable.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer plat2.Close()
	final := durableView{
		Blocks:   daemon.LedgerStatus(plat2.AC),
		Versions: plat2.Store.Watermarks(),
	}
	loss = plat2.AC.StreamLoss()
	final.LossEps, final.LossDelta = loss.Epsilon, loss.Delta
	if !reflect.DeepEqual(final, want) {
		t.Fatalf("post-drain WAL state differs:\n got %+v\nwant %+v", final, want)
	}
}

func fetchWatermarks(t *testing.T, base string) map[string]int {
	t.Helper()
	resp, err := http.Get(base + "/replica/status")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		Watermarks map[string]int `json:"watermarks"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st.Watermarks
}

// TestMain keeps `go test ./cmd/sagectl` hermetic: the e2e builds the
// binary itself, but a stray GOFLAGS (-mod=vendor etc.) from the
// environment would break it, so normalize the obvious ones.
func TestMain(m *testing.M) {
	os.Unsetenv("GOFLAGS")
	code := m.Run()
	if code != 0 {
		fmt.Fprintln(os.Stderr, "sagectl e2e failed")
	}
	os.Exit(code)
}
