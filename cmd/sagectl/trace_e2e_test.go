package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// scrapeTrace fetches url's /debug/trace, strict-decodes the export
// against the published trace.Snapshot schema (unknown fields are a
// contract break, not noise), and archives the raw JSON under the
// artifact dir so CI uploads it next to the metrics scrapes.
func scrapeTrace(t *testing.T, url, artifact string) trace.Snapshot {
	t.Helper()
	resp, err := http.Get(url + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s/debug/trace: HTTP %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("GET %s/debug/trace Content-Type %q, want application/json", url, ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	dir := os.Getenv("SAGE_TRACE_ARTIFACT_DIR")
	if dir == "" {
		dir = t.TempDir()
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, artifact), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	var snap trace.Snapshot
	if err := dec.Decode(&snap); err != nil {
		t.Fatalf("GET %s/debug/trace does not strict-decode as trace.Snapshot: %v\npayload:\n%s", url, err, raw)
	}
	return snap
}

// tickPhases are the four child spans every daemon.tick root records.
var tickPhases = []string{"daemon.ingest", "daemon.train", "daemon.retention", "daemon.compaction"}

// assertTickTree requires that the snapshot holds at least one complete
// daemon tick: a daemon.tick root span with all four phase children
// parented to it (span links, not just name matches).
func assertTickTree(t *testing.T, snap trace.Snapshot, label string) {
	t.Helper()
	spans := append(append([]trace.SpanJSON(nil), snap.Recent...), snap.Captured...)
	for _, sp := range spans {
		if sp.Name != "daemon.tick" {
			continue
		}
		if sp.Service != "daemon" {
			t.Fatalf("%s: daemon.tick span carries service %q, want daemon", label, sp.Service)
		}
		have := map[string]bool{}
		for _, c := range spans {
			if c.TraceID == sp.TraceID && c.ParentID == sp.SpanID {
				have[c.Name] = true
			}
		}
		complete := true
		for _, p := range tickPhases {
			if !have[p] {
				complete = false
			}
		}
		if complete {
			return
		}
	}
	t.Fatalf("%s: no daemon.tick root with all phase children %v; %d span(s) in export",
		label, tickPhases, len(spans))
}

// TestDaemonTraceE2E is the tracing acceptance test: run the real
// sagectl daemon binary with -debug, and require that (1) GET
// /debug/trace strict-decodes and shows complete tick span trees, (2)
// the pprof surface is live, (3) a hard kill and relaunch brings the
// whole debug surface back (rings are per-process; only spans from the
// new process may appear), and (4) `sagectl trace` renders the export.
func TestDaemonTraceE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and kills a child binary; skipped in -short")
	}
	bin := buildSagectl(t)
	walDir := filepath.Join(t.TempDir(), "wal")

	d1 := startDaemon(t, bin, walDir, "-tick", "30ms", "-debug")
	deadline := time.Now().Add(120 * time.Second)
	for {
		st, err := d1.status(t)
		if err == nil && st.Ticks >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon made no progress before deadline; output:\n%s", d1.out.dump())
		}
		time.Sleep(20 * time.Millisecond)
	}
	snap := scrapeTrace(t, "http://"+d1.addr, "daemon-live.trace.json")
	if snap.Service != "daemon" {
		t.Fatalf("snapshot service %q, want daemon", snap.Service)
	}
	if snap.SpansRecorded == 0 {
		t.Fatal("snapshot reports zero spans recorded on a ticking daemon")
	}
	assertTickTree(t, snap, "live")

	// The WAL tier joins the same tracer: commits show up as wal.commit
	// roots with append/flush children.
	walSpan := false
	for _, sp := range snap.Recent {
		if sp.Name == "wal.commit" {
			walSpan = true
		}
	}
	if !walSpan {
		t.Fatal("no wal.commit span in the recent ring of a daemon that journals every tick")
	}

	// Continuous profiling rides the same -debug flag.
	resp, err := http.Get("http://" + d1.addr + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/cmdline: HTTP %d", resp.StatusCode)
	}

	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = d1.cmd.Process.Wait()

	// Relaunch over the same WAL: trace rings are in-memory, so the new
	// process starts empty and must refill from its own ticks.
	d2 := startDaemon(t, bin, walDir, "-tick", "30ms", "-debug")
	deadline = time.Now().Add(120 * time.Second)
	for {
		st, err := d2.status(t)
		if err == nil && st.Ticks >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("relaunched daemon made no progress; output:\n%s", d2.out.dump())
		}
		time.Sleep(20 * time.Millisecond)
	}
	snap2 := scrapeTrace(t, "http://"+d2.addr, "daemon-recovered.trace.json")
	assertTickTree(t, snap2, "recovered")

	// The CLI view over the same export: `sagectl trace` must render the
	// tick tree (root and an indented phase child).
	out, err := exec.Command(bin, "trace", "-from", "http://"+d2.addr).CombinedOutput()
	if err != nil {
		t.Fatalf("sagectl trace: %v\n%s", err, out)
	}
	for _, want := range []string{"service daemon:", "daemon.tick", "  daemon.ingest"} {
		if !strings.Contains(string(out), want) {
			t.Fatalf("sagectl trace output missing %q:\n%s", want, out)
		}
	}
}
