//go:build !race

package main

// raceEnabled mirrors whether this test binary was built with -race, so
// the e2e harness builds the sagectl child binary the same way and the
// kill/relaunch loop actually runs under the race detector in CI's
// -race job.
const raceEnabled = false
