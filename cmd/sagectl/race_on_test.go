//go:build race

package main

// raceEnabled mirrors whether this test binary was built with -race.
const raceEnabled = true
